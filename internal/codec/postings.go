package codec

import (
	"errors"
	"slices"
)

// PostingList compresses a sorted list of trajectory IDs with delta
// encoding followed by Huffman coding of the gap values — the grid-cell
// posting-list representation of §5.1. Gaps larger than the Huffman
// alphabet are escaped with a reserved symbol followed by a 32-bit raw
// value, so arbitrary ID distributions stay lossless.
type PostingList struct {
	N    int    // number of IDs
	Bits int    // exact encoded length in bits (excluding the shared table)
	Data []byte // encoded gaps
}

// escapeSymbol marks a gap too large for the shared alphabet; it is
// followed by 32 raw bits.
const escapeSymbol = ^uint32(0)

// GapAlphabet bounds the directly-encoded gap values; gaps ≥ GapAlphabet
// use the escape path. Small gaps dominate in dense cells, which is where
// compression matters.
const GapAlphabet = 1 << 12

// PostingCoder owns the Huffman table shared by all posting lists of one
// index (one table per PI, amortizing the table cost across cells).
type PostingCoder struct {
	huff    *Huffman
	w       BitWriter // Encode scratch
	scratch []uint32  // sort scratch for unsorted input
}

// PostingFreq accumulates the gap-symbol frequencies of posting lists —
// the training pass of a PostingCoder, kept allocation-free: a dense
// counter per alphabet gap plus the escape count, no per-list copies.
type PostingFreq struct {
	counts  [GapAlphabet]uint64
	escapes uint64
	scratch []uint32
}

// Add counts the gap symbols of one posting list (sorted or not; unsorted
// lists are sorted into an internal scratch copy).
func (f *PostingFreq) Add(ids []uint32) {
	if len(ids) == 0 {
		return
	}
	s := ids
	if !slices.IsSorted(ids) {
		f.scratch = append(f.scratch[:0], ids...)
		slices.Sort(f.scratch)
		s = f.scratch
	}
	prev := uint32(0)
	for i, id := range s {
		g := id
		if i > 0 {
			g = id - prev
		}
		prev = id
		if g < GapAlphabet {
			f.counts[g]++
		} else {
			f.escapes++
		}
	}
}

// NewPostingCoderFromFreq builds the shared Huffman coder from
// accumulated frequencies.
func NewPostingCoderFromFreq(f *PostingFreq) (*PostingCoder, error) {
	freq := make(map[uint32]uint64)
	for g, n := range f.counts {
		if n > 0 {
			freq[uint32(g)] = n
		}
	}
	if f.escapes > 0 {
		freq[escapeSymbol] = f.escapes
	}
	if len(freq) == 0 {
		// An index with only empty cells still needs a functioning coder.
		freq[0] = 1
	}
	h, err := NewHuffman(freq)
	if err != nil {
		return nil, err
	}
	return &PostingCoder{huff: h}, nil
}

// gaps converts a sorted ID list to first-value-plus-gaps form. The first
// element is stored as-is (it is also a "gap" from −1 conceptually; we use
// id₀+1 gap from -1 to keep all symbols ≥ 0... simply: first = ids[0],
// then deltas).
func gaps(ids []uint32) []uint32 {
	out := make([]uint32, len(ids))
	prev := uint32(0)
	for i, id := range ids {
		if i == 0 {
			out[i] = id
		} else {
			out[i] = id - prev
		}
		prev = id
	}
	return out
}

// symbolize maps a gap to its Huffman symbol (escape for large gaps).
func symbolize(g uint32) uint32 {
	if g >= GapAlphabet {
		return escapeSymbol
	}
	return g
}

// NewPostingCoder builds the shared gap-frequency Huffman table from all
// posting lists that the index will store. lists need not be sorted; the
// coder sorts copies internally (IDs within a cell are set-valued).
func NewPostingCoder(lists [][]uint32) (*PostingCoder, error) {
	var f PostingFreq
	for _, ids := range lists {
		f.Add(ids)
	}
	return NewPostingCoderFromFreq(&f)
}

// TableBits returns the size of the shared Huffman table in bits.
func (c *PostingCoder) TableBits() int { return c.huff.TableBits() }

// Encode compresses ids (ascending order expected per the caller's
// contract; already-sorted input — the common case, columns arrive
// ID-sorted — is encoded in place with no copy, and unsorted input is
// sorted into the coder's scratch).
func (c *PostingCoder) Encode(ids []uint32) (*PostingList, error) {
	pl, _, err := c.AppendEncode(nil, ids)
	if err != nil {
		return nil, err
	}
	return &pl, nil
}

// AppendEncode is Encode with the encoded bytes appended to arena: the
// returned list's Data aliases the returned arena, letting an index seal
// hundreds of thousands of tiny cell postings into a handful of
// allocations. Growing the arena may reallocate it; lists encoded
// earlier keep their (still valid) view of the previous backing array.
func (c *PostingCoder) AppendEncode(arena []byte, ids []uint32) (PostingList, []byte, error) {
	s := ids
	if !slices.IsSorted(ids) {
		c.scratch = append(c.scratch[:0], ids...)
		slices.Sort(c.scratch)
		s = c.scratch
	}
	c.w.Reset()
	prev := uint32(0)
	fastLen, fastCode := c.huff.fastLen, c.huff.fastCode
	for i, id := range s {
		g := id
		if i > 0 {
			g = id - prev
		}
		prev = id
		// In-alphabet gaps hit the dense code table directly (the common
		// case by construction: the coder was trained on these lists).
		if g < GapAlphabet && int(g) < len(fastLen) && fastLen[g] > 0 {
			c.w.WriteBits(fastCode[g], int(fastLen[g]))
			continue
		}
		sym := symbolize(g)
		if err := c.huff.EncodeSymbol(&c.w, sym); err != nil {
			return PostingList{}, arena, err
		}
		if sym == escapeSymbol {
			c.w.WriteBits(uint64(g), 32)
		}
	}
	start := len(arena)
	arena = append(arena, c.w.Bytes()...)
	return PostingList{N: len(s), Bits: c.w.Len(), Data: arena[start:len(arena):len(arena)]}, arena, nil
}

// Decode reconstructs the sorted ID list.
func (c *PostingCoder) Decode(p *PostingList) ([]uint32, error) {
	if p.N == 0 {
		return nil, nil
	}
	r := NewBitReader(p.Data, p.Bits)
	out := make([]uint32, 0, p.N)
	var prev uint32
	for i := 0; i < p.N; i++ {
		sym, err := c.huff.DecodeSymbol(r)
		if err != nil {
			return nil, err
		}
		g := sym
		if sym == escapeSymbol {
			raw, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			g = uint32(raw)
		}
		var id uint32
		if i == 0 {
			id = g
		} else {
			id = prev + g
		}
		out = append(out, id)
		prev = id
	}
	return out, nil
}

// DeltaEncode returns the delta (gap) representation of a sorted uint32
// slice, exposed for size accounting and tests.
func DeltaEncode(sorted []uint32) ([]uint32, error) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			return nil, errors.New("codec: DeltaEncode requires sorted input")
		}
	}
	return gaps(sorted), nil
}

// DeltaDecode inverts DeltaEncode.
func DeltaDecode(deltas []uint32) []uint32 {
	out := make([]uint32, len(deltas))
	var prev uint32
	for i, g := range deltas {
		if i == 0 {
			out[i] = g
		} else {
			out[i] = prev + g
		}
		prev = out[i]
	}
	return out
}
