package codec

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEADBEEF, 32)
	if w.Len() != 38 {
		t.Fatalf("Len = %d, want 38", w.Len())
	}
	r := NewBitReader(w.Bytes(), w.Len())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("second bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("word = %x", v)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("expected ErrShortStream, got %v", err)
	}
}

func TestBitWriterReset(t *testing.T) {
	var w BitWriter
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	w.WriteBits(0b101, 3)
	r := NewBitReader(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("after reset: %b", v)
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		if len(vals) == 0 || len(widths) == 0 {
			return true
		}
		var w BitWriter
		ws := make([]int, len(vals))
		for i, v := range vals {
			width := 1 + int(widths[i%len(widths)]%16)
			ws[i] = width
			w.WriteBits(uint64(v)&((1<<uint(width))-1), width)
		}
		r := NewBitReader(w.Bytes(), w.Len())
		for i, v := range vals {
			got, err := r.ReadBits(ws[i])
			if err != nil {
				return false
			}
			if got != uint64(v)&((1<<uint(ws[i]))-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8, 257: 9, 512: 9}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	h, err := NewHuffman(map[uint32]uint64{42: 100})
	if err != nil {
		t.Fatal(err)
	}
	buf, nbits, err := h.Encode([]uint32{42, 42, 42})
	if err != nil {
		t.Fatal(err)
	}
	if nbits != 3 {
		t.Fatalf("single-symbol alphabet should use 1 bit/symbol, got %d bits", nbits)
	}
	got, err := h.Decode(buf, nbits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint32{42, 42, 42}) {
		t.Fatalf("decode = %v", got)
	}
}

func TestHuffmanEmptyAlphabet(t *testing.T) {
	if _, err := NewHuffman(map[uint32]uint64{}); err == nil {
		t.Fatal("expected error for empty alphabet")
	}
	if _, err := NewHuffman(map[uint32]uint64{1: 0}); err == nil {
		t.Fatal("expected error when all frequencies are zero")
	}
}

func TestHuffmanSkewGivesShortCodes(t *testing.T) {
	h, err := NewHuffman(map[uint32]uint64{0: 1000, 1: 10, 2: 10, 3: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.CodeLen(0) >= h.CodeLen(3) {
		t.Fatalf("frequent symbol should have shorter code: len(0)=%d len(3)=%d",
			h.CodeLen(0), h.CodeLen(3))
	}
	if h.CodeLen(0) != 1 {
		t.Fatalf("dominant symbol should get a 1-bit code, got %d", h.CodeLen(0))
	}
}

func TestHuffmanRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		alpha := 2 + rng.Intn(64)
		freq := make(map[uint32]uint64)
		for s := 0; s < alpha; s++ {
			freq[uint32(s)] = uint64(1 + rng.Intn(1000))
		}
		h, err := NewHuffman(freq)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]uint32, 200)
		for i := range msg {
			msg[i] = uint32(rng.Intn(alpha))
		}
		buf, nbits, err := h.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Decode(buf, nbits, len(msg))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("iter %d: round trip failed", iter)
		}
		wantBits, _ := h.EncodedBits(msg)
		if wantBits != nbits {
			t.Fatalf("EncodedBits = %d, stream = %d", wantBits, nbits)
		}
	}
}

func TestHuffmanKraft(t *testing.T) {
	// Kraft inequality must hold with equality for a complete Huffman code.
	h, err := NewHuffman(map[uint32]uint64{0: 5, 1: 3, 2: 2, 3: 1, 4: 1})
	if err != nil {
		t.Fatal(err)
	}
	var kraft float64
	for s := uint32(0); s < 5; s++ {
		kraft += 1 / float64(uint64(1)<<uint(h.CodeLen(s)))
	}
	if kraft > 1.0000001 || kraft < 0.9999999 {
		t.Fatalf("Kraft sum = %v, want 1", kraft)
	}
}

func TestHuffmanUnknownSymbol(t *testing.T) {
	h, _ := NewHuffman(map[uint32]uint64{1: 1, 2: 1})
	var w BitWriter
	if err := h.EncodeSymbol(&w, 99); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
}

func TestDeltaEncodeDecode(t *testing.T) {
	ids := []uint32{3, 7, 7, 20, 100}
	d, err := DeltaEncode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, []uint32{3, 4, 0, 13, 80}) {
		t.Fatalf("deltas = %v", d)
	}
	if got := DeltaDecode(d); !reflect.DeepEqual(got, ids) {
		t.Fatalf("decode = %v", got)
	}
	if _, err := DeltaEncode([]uint32{5, 3}); err == nil {
		t.Fatal("unsorted input must error")
	}
	if d, _ := DeltaEncode(nil); len(d) != 0 {
		t.Fatal("nil input")
	}
}

func TestPostingRoundTrip(t *testing.T) {
	lists := [][]uint32{
		{1, 2, 3, 4, 5},
		{10, 20, 30},
		{100000, 100001}, // exercises a large first value (escape path)
		{},
		{7},
	}
	c, err := NewPostingCoder(lists)
	if err != nil {
		t.Fatal(err)
	}
	for _, ids := range lists {
		p, err := c.Encode(ids)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]uint32(nil), ids...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty list decode = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("decode = %v, want %v", got, want)
		}
	}
}

func TestPostingUnsortedInput(t *testing.T) {
	c, err := NewPostingCoder([][]uint32{{5, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Encode([]uint32{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint32{1, 3, 5}) {
		t.Fatalf("decode = %v", got)
	}
}

func TestPostingCompressesDenseCells(t *testing.T) {
	// 1000 consecutive IDs: gaps are all 1, so the Huffman stream should be
	// close to 1 bit per ID — far below the 32-bit raw representation.
	ids := make([]uint32, 1000)
	for i := range ids {
		ids[i] = uint32(i + 5000)
	}
	c, err := NewPostingCoder([][]uint32{ids})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Encode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits > 3*len(ids)+64 {
		t.Fatalf("dense cell encoded in %d bits, expected ≈%d", p.Bits, len(ids))
	}
}

func TestPostingRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(300)
		set := map[uint32]bool{}
		for len(set) < n {
			set[uint32(rng.Intn(1<<20))] = true
		}
		ids := make([]uint32, 0, n)
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		c, err := NewPostingCoder([][]uint32{ids})
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.Encode(ids)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatal("expected empty decode")
			}
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("iter %d: round trip failed", iter)
		}
	}
}

func TestPostingEmptyCoder(t *testing.T) {
	c, err := NewPostingCoder(nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 0 || p.Bits != 0 {
		t.Fatalf("empty encode: %+v", p)
	}
}

func BenchmarkPostingEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ids := make([]uint32, 0, 1000)
	cur := uint32(0)
	for i := 0; i < 1000; i++ {
		cur += uint32(1 + rng.Intn(20))
		ids = append(ids, cur)
	}
	c, _ := NewPostingCoder([][]uint32{ids})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(ids); err != nil {
			b.Fatal(err)
		}
	}
}
