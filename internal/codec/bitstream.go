// Package codec implements the bit-level coding substrate of
// PPQ-trajectory: bit streams (for CQC codes and codeword indexes),
// delta encoding, and canonical Huffman coding. The paper compresses the
// trajectory-ID posting lists of each grid cell with delta encoding
// followed by Huffman codes (§5.1, following [19, 22, 42]); the same
// Huffman coder also measures entropy-coded sizes for the compression-ratio
// experiments (Figure 9).
package codec

import (
	"errors"
	"fmt"
)

// ErrShortStream is returned when a read runs past the end of a BitReader.
var ErrShortStream = errors.New("codec: read past end of bit stream")

// BitWriter accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	nbit int // bits used in the last byte (0..7); 0 means last byte full/none
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	w.nbit--
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << uint(w.nbit)
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64]. Bits land in byte-sized chunks, not one by one.
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("codec: WriteBits n=%d", n))
	}
	// Top up the partial byte.
	for n > 0 && w.nbit > 0 {
		n--
		w.nbit--
		if v>>uint(n)&1 != 0 {
			w.buf[len(w.buf)-1] |= 1 << uint(w.nbit)
		}
	}
	// Whole bytes.
	for n >= 8 {
		n -= 8
		w.buf = append(w.buf, byte(v>>uint(n)))
	}
	// Remainder opens a fresh partial byte.
	if n > 0 {
		w.buf = append(w.buf, byte(v<<uint(8-n)))
		w.nbit = 8 - n
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int {
	if len(w.buf) == 0 {
		return 0
	}
	return len(w.buf)*8 - w.nbit
}

// Bytes returns the backing buffer; trailing unused bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse without reallocating.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // bit cursor
	nbit int // total readable bits
}

// NewBitReader reads up to nbits bits from buf. Pass nbits < 0 to allow
// the whole buffer (len(buf)*8 bits).
func NewBitReader(buf []byte, nbits int) *BitReader {
	if nbits < 0 || nbits > len(buf)*8 {
		nbits = len(buf) * 8
	}
	return &BitReader{buf: buf, nbit: nbits}
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrShortStream
	}
	b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as the low bits of a uint64.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("codec: ReadBits n=%d", n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// Remaining returns how many bits are left to read.
func (r *BitReader) Remaining() int { return r.nbit - r.pos }

// BitsFor returns the minimum number of bits needed to represent values in
// [0, n): ⌈log₂ n⌉ with BitsFor(0) = BitsFor(1) = 0... except callers
// indexing a 1-entry codebook still need an index, so BitsFor(1) = 1.
func BitsFor(n int) int {
	if n <= 1 {
		if n == 1 {
			return 1
		}
		return 0
	}
	bits := 0
	for v := uint64(n - 1); v > 0; v >>= 1 {
		bits++
	}
	return bits
}
