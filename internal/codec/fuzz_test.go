package codec

import "testing"

// FuzzHuffmanRoundTrip derives a frequency table and a message from the
// fuzz input and checks that Decode(Encode(msg)) == msg for whatever
// canonical code NewHuffman builds. The alphabet is kept small so the
// fuzzer spends its budget on code-shape diversity (skewed, uniform,
// single-symbol) rather than on huge tables.
func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3}, []byte{0, 0, 0, 1, 2, 3})
	f.Add([]byte{2, 0, 100, 1, 1}, []byte{0, 1, 0, 0, 1})
	f.Add([]byte{1, 42, 100}, []byte{42, 42, 42})
	f.Add([]byte{5, 0, 5, 1, 3, 2, 2, 3, 1, 4, 1}, []byte{4, 3, 2, 1, 0, 0, 1, 2})

	f.Fuzz(func(t *testing.T, table, msg []byte) {
		if len(table) == 0 {
			return
		}
		// table = [count, sym0, w0, sym1, w1, ...]; weights are bumped by
		// one so every listed symbol has nonzero frequency.
		n := int(table[0]%16) + 1
		freq := map[uint32]uint64{}
		for i := 0; i < n && 1+2*i+1 < len(table); i++ {
			freq[uint32(table[1+2*i])] = uint64(table[1+2*i+1]) + 1
		}
		if len(freq) == 0 {
			return
		}
		h, err := NewHuffman(freq)
		if err != nil {
			t.Fatalf("NewHuffman(%v): %v", freq, err)
		}
		symbols := make([]uint32, 0, len(msg))
		for _, b := range msg {
			s := uint32(b)
			if _, ok := freq[s]; ok {
				symbols = append(symbols, s)
			}
		}
		buf, nbits, err := h.Encode(symbols)
		if err != nil {
			t.Fatalf("Encode(%v): %v", symbols, err)
		}
		got, err := h.Decode(buf, nbits, len(symbols))
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if len(got) != len(symbols) {
			t.Fatalf("round-trip length: got %d, want %d", len(got), len(symbols))
		}
		for i := range got {
			if got[i] != symbols[i] {
				t.Fatalf("round-trip symbol %d: got %d, want %d", i, got[i], symbols[i])
			}
		}
	})
}
