package codec

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrBadHuffmanCode is returned when a bit stream does not decode to a
// known symbol.
var ErrBadHuffmanCode = errors.New("codec: invalid huffman code")

// huffNode is a node of the Huffman construction heap.
type huffNode struct {
	weight      uint64
	symbol      uint32 // valid for leaves
	leaf        bool
	left, right *huffNode
	order       int // tie-break for determinism
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Huffman is a canonical Huffman coder over uint32 symbols. Build it from
// symbol frequencies, then Encode/Decode streams of symbols.
type Huffman struct {
	lens    map[uint32]int    // symbol → code length
	codes   map[uint32]uint64 // symbol → canonical code
	decode  map[uint64]uint32 // (length<<32 | code) → symbol (small alphabets)
	maxLen  int
	symbols []uint32 // canonical order, for serialization
}

// NewHuffman builds a coder from frequency counts. Symbols with zero
// frequency are ignored. At least one symbol must have positive frequency.
func NewHuffman(freq map[uint32]uint64) (*Huffman, error) {
	var syms []uint32
	for s, f := range freq {
		if f > 0 {
			syms = append(syms, s)
		}
	}
	if len(syms) == 0 {
		return nil, errors.New("codec: huffman needs at least one symbol")
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	lens := make(map[uint32]int, len(syms))
	if len(syms) == 1 {
		// Degenerate alphabet: one symbol, one bit.
		lens[syms[0]] = 1
	} else {
		h := make(huffHeap, 0, len(syms))
		for i, s := range syms {
			h = append(h, &huffNode{weight: freq[s], symbol: s, leaf: true, order: i})
		}
		heap.Init(&h)
		order := len(syms)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*huffNode)
			b := heap.Pop(&h).(*huffNode)
			heap.Push(&h, &huffNode{weight: a.weight + b.weight, left: a, right: b, order: order})
			order++
		}
		root := h[0]
		var walk func(n *huffNode, depth int)
		walk = func(n *huffNode, depth int) {
			if n.leaf {
				if depth == 0 {
					depth = 1
				}
				lens[n.symbol] = depth
				return
			}
			walk(n.left, depth+1)
			walk(n.right, depth+1)
		}
		walk(root, 0)
	}
	return newCanonical(lens)
}

// newCanonical assigns canonical codes given code lengths.
func newCanonical(lens map[uint32]int) (*Huffman, error) {
	type symLen struct {
		sym uint32
		l   int
	}
	sl := make([]symLen, 0, len(lens))
	maxLen := 0
	for s, l := range lens {
		if l <= 0 || l > 63 {
			return nil, fmt.Errorf("codec: bad code length %d", l)
		}
		sl = append(sl, symLen{s, l})
		if l > maxLen {
			maxLen = l
		}
	}
	sort.Slice(sl, func(i, j int) bool {
		if sl[i].l != sl[j].l {
			return sl[i].l < sl[j].l
		}
		return sl[i].sym < sl[j].sym
	})
	h := &Huffman{
		lens:   lens,
		codes:  make(map[uint32]uint64, len(lens)),
		decode: make(map[uint64]uint32, len(lens)),
		maxLen: maxLen,
	}
	var code uint64
	prevLen := 0
	for _, e := range sl {
		code <<= uint(e.l - prevLen)
		prevLen = e.l
		h.codes[e.sym] = code
		h.decode[uint64(e.l)<<32|code] = e.sym
		h.symbols = append(h.symbols, e.sym)
		code++
	}
	return h, nil
}

// CodeLen returns the code length in bits for symbol s (0 if unknown).
func (h *Huffman) CodeLen(s uint32) int { return h.lens[s] }

// MaxLen returns the longest code length.
func (h *Huffman) MaxLen() int { return h.maxLen }

// EncodeSymbol appends the code for s to w.
func (h *Huffman) EncodeSymbol(w *BitWriter, s uint32) error {
	l, ok := h.lens[s]
	if !ok {
		return fmt.Errorf("codec: symbol %d not in huffman alphabet", s)
	}
	w.WriteBits(h.codes[s], l)
	return nil
}

// DecodeSymbol reads one symbol from r.
func (h *Huffman) DecodeSymbol(r *BitReader) (uint32, error) {
	var code uint64
	for l := 1; l <= h.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		if s, ok := h.decode[uint64(l)<<32|code]; ok {
			return s, nil
		}
	}
	return 0, ErrBadHuffmanCode
}

// Encode writes all symbols to a fresh buffer and returns it along with
// the exact bit length.
func (h *Huffman) Encode(symbols []uint32) ([]byte, int, error) {
	var w BitWriter
	for _, s := range symbols {
		if err := h.EncodeSymbol(&w, s); err != nil {
			return nil, 0, err
		}
	}
	return w.Bytes(), w.Len(), nil
}

// Decode reads exactly n symbols from buf (containing nbits valid bits).
func (h *Huffman) Decode(buf []byte, nbits, n int) ([]uint32, error) {
	r := NewBitReader(buf, nbits)
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s, err := h.DecodeSymbol(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// EncodedBits returns the total bit length of encoding symbols without
// materializing the stream — used by the size accounting in Figure 9.
func (h *Huffman) EncodedBits(symbols []uint32) (int, error) {
	total := 0
	for _, s := range symbols {
		l, ok := h.lens[s]
		if !ok {
			return 0, fmt.Errorf("codec: symbol %d not in huffman alphabet", s)
		}
		total += l
	}
	return total, nil
}

// TableBits estimates the serialized size of the code table itself:
// per symbol, the symbol value (32 bits) and its length (6 bits). The
// canonical construction means lengths alone are sufficient to rebuild.
func (h *Huffman) TableBits() int { return len(h.lens) * (32 + 6) }
