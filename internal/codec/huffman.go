package codec

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
)

// ErrBadHuffmanCode is returned when a bit stream does not decode to a
// known symbol.
var ErrBadHuffmanCode = errors.New("codec: invalid huffman code")

// Huffman is a canonical Huffman coder over uint32 symbols. Build it from
// symbol frequencies, then Encode/Decode streams of symbols.
//
// Encoding and decoding run on dense arrays, not maps: canonical codes of
// one length are consecutive, so a decoder only needs per-length
// (first code, count, symbol offset) triples, and small symbols (the
// posting coder's gap alphabet) get a direct symbol→code table. The maps
// remain as the fallback for sparse/large symbols.
type Huffman struct {
	lens    map[uint32]int    // symbol → code length
	codes   map[uint32]uint64 // symbol → canonical code
	maxLen  int
	symbols []uint32 // canonical order, for serialization and decoding

	dCount  [65]uint32 // codes per length
	dFirst  [65]uint64 // first canonical code of each length
	dOffset [65]int32  // index into symbols of each length's first code

	fastLen  []uint8 // symbol → code length for small symbols (0 = absent)
	fastCode []uint64
}

// fastSymbolBound caps the dense encode table (covers the posting gap
// alphabet with room to spare; larger symbols fall back to the maps).
const fastSymbolBound = 1 << 16

// NewHuffman builds a coder from frequency counts. Symbols with zero
// frequency are ignored. At least one symbol must have positive frequency.
func NewHuffman(freq map[uint32]uint64) (*Huffman, error) {
	var syms []uint32
	for s, f := range freq {
		if f > 0 {
			syms = append(syms, s)
		}
	}
	if len(syms) == 0 {
		return nil, errors.New("codec: huffman needs at least one symbol")
	}
	slices.Sort(syms)

	lens := make(map[uint32]int, len(syms))
	if len(syms) == 1 {
		// Degenerate alphabet: one symbol, one bit.
		lens[syms[0]] = 1
	} else {
		// Order symbols by (frequency, symbol) — a deterministic total
		// order — and compute optimal code lengths with the in-place
		// Moffat–Katajainen algorithm: two O(n) sweeps over the weight
		// array instead of a heap of tree nodes.
		type symFreq struct {
			sym uint32
			f   uint64
		}
		sf := make([]symFreq, len(syms))
		for i, s := range syms {
			sf[i] = symFreq{sym: s, f: freq[s]}
		}
		slices.SortFunc(sf, func(a, b symFreq) int {
			if a.f != b.f {
				return cmp.Compare(a.f, b.f)
			}
			return cmp.Compare(a.sym, b.sym)
		})
		a := make([]uint64, len(sf))
		for i := range sf {
			a[i] = sf[i].f
		}
		minimumRedundancy(a)
		for i := range sf {
			l := int(a[i])
			if l == 0 {
				l = 1
			}
			lens[sf[i].sym] = l
		}
	}
	return newCanonical(lens)
}

// minimumRedundancy computes optimal prefix-code lengths in place from
// weights sorted ascending (Moffat & Katajainen, "In-place calculation of
// minimum-redundancy codes", 1995): a[i] becomes the code length of the
// i-th lightest symbol. Requires len(a) ≥ 2.
func minimumRedundancy(a []uint64) {
	n := len(a)
	// Phase 1: pairwise combination, storing parent indices in place.
	a[0] += a[1]
	root, leaf := 0, 2
	for next := 1; next < n-1; next++ {
		if leaf >= n || a[root] < a[leaf] {
			a[next] = a[root]
			a[root] = uint64(next)
			root++
		} else {
			a[next] = a[leaf]
			leaf++
		}
		if leaf >= n || (root < next && a[root] < a[leaf]) {
			a[next] += a[root]
			a[root] = uint64(next)
			root++
		} else {
			a[next] += a[leaf]
			leaf++
		}
	}
	// Phase 2: internal-node depths from parent pointers.
	a[n-2] = 0
	for next := n - 3; next >= 0; next-- {
		a[next] = a[a[next]] + 1
	}
	// Phase 3: leaf depths from internal depth counts.
	avail, used, depth := 1, 0, 0
	rootIdx, next := n-2, n-1
	for avail > 0 {
		for rootIdx >= 0 && int(a[rootIdx]) == depth {
			used++
			rootIdx--
		}
		for avail > used {
			a[next] = uint64(depth)
			next--
			avail--
		}
		avail = 2 * used
		depth++
		used = 0
	}
}

// newCanonical assigns canonical codes given code lengths.
func newCanonical(lens map[uint32]int) (*Huffman, error) {
	type symLen struct {
		sym uint32
		l   int
	}
	sl := make([]symLen, 0, len(lens))
	maxLen := 0
	for s, l := range lens {
		if l <= 0 || l > 63 {
			return nil, fmt.Errorf("codec: bad code length %d", l)
		}
		sl = append(sl, symLen{s, l})
		if l > maxLen {
			maxLen = l
		}
	}
	slices.SortFunc(sl, func(a, b symLen) int {
		if a.l != b.l {
			return cmp.Compare(a.l, b.l)
		}
		return cmp.Compare(a.sym, b.sym)
	})
	h := &Huffman{
		lens:   lens,
		codes:  make(map[uint32]uint64, len(lens)),
		maxLen: maxLen,
	}
	maxFast := -1
	for _, e := range sl {
		if int(e.sym) < fastSymbolBound && int(e.sym) > maxFast {
			maxFast = int(e.sym)
		}
	}
	if maxFast >= 0 {
		h.fastLen = make([]uint8, maxFast+1)
		h.fastCode = make([]uint64, maxFast+1)
	}
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.l - prevLen)
		prevLen = e.l
		h.codes[e.sym] = code
		if h.dCount[e.l] == 0 {
			h.dFirst[e.l] = code
			h.dOffset[e.l] = int32(i)
		}
		h.dCount[e.l]++
		if int(e.sym) < fastSymbolBound {
			h.fastLen[e.sym] = uint8(e.l)
			h.fastCode[e.sym] = code
		}
		h.symbols = append(h.symbols, e.sym)
		code++
	}
	return h, nil
}

// CodeLen returns the code length in bits for symbol s (0 if unknown).
func (h *Huffman) CodeLen(s uint32) int { return h.lens[s] }

// MaxLen returns the longest code length.
func (h *Huffman) MaxLen() int { return h.maxLen }

// EncodeSymbol appends the code for s to w.
func (h *Huffman) EncodeSymbol(w *BitWriter, s uint32) error {
	if int64(s) < int64(len(h.fastLen)) {
		if l := h.fastLen[s]; l > 0 {
			w.WriteBits(h.fastCode[s], int(l))
			return nil
		}
		return fmt.Errorf("codec: symbol %d not in huffman alphabet", s)
	}
	l, ok := h.lens[s]
	if !ok {
		return fmt.Errorf("codec: symbol %d not in huffman alphabet", s)
	}
	w.WriteBits(h.codes[s], l)
	return nil
}

// DecodeSymbol reads one symbol from r, walking the canonical per-length
// ranges (codes of one length are consecutive, so membership is a single
// range check per length — no table lookups).
func (h *Huffman) DecodeSymbol(r *BitReader) (uint32, error) {
	var code uint64
	for l := 1; l <= h.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		if c := h.dCount[l]; c > 0 && code >= h.dFirst[l] && code-h.dFirst[l] < uint64(c) {
			return h.symbols[h.dOffset[l]+int32(code-h.dFirst[l])], nil
		}
	}
	return 0, ErrBadHuffmanCode
}

// Encode writes all symbols to a fresh buffer and returns it along with
// the exact bit length.
func (h *Huffman) Encode(symbols []uint32) ([]byte, int, error) {
	var w BitWriter
	for _, s := range symbols {
		if err := h.EncodeSymbol(&w, s); err != nil {
			return nil, 0, err
		}
	}
	return w.Bytes(), w.Len(), nil
}

// Decode reads exactly n symbols from buf (containing nbits valid bits).
func (h *Huffman) Decode(buf []byte, nbits, n int) ([]uint32, error) {
	r := NewBitReader(buf, nbits)
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s, err := h.DecodeSymbol(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// EncodedBits returns the total bit length of encoding symbols without
// materializing the stream — used by the size accounting in Figure 9.
func (h *Huffman) EncodedBits(symbols []uint32) (int, error) {
	total := 0
	for _, s := range symbols {
		l, ok := h.lens[s]
		if !ok {
			return 0, fmt.Errorf("codec: symbol %d not in huffman alphabet", s)
		}
		total += l
	}
	return total, nil
}

// TableBits estimates the serialized size of the code table itself:
// per symbol, the symbol value (32 bits) and its length (6 bits). The
// canonical construction means lengths alone are sufficient to rebuild.
func (h *Huffman) TableBits() int { return len(h.lens) * (32 + 6) }
