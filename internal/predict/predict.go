// Package predict implements the prediction side of PPQ-trajectory's
// predictive quantizer: fitting the shared linear coefficients P_j[t] of
// Equation 1 over a partition's trajectories, applying them to previous
// reconstructed points (Equation 2), and extracting the per-trajectory
// lag-k autocorrelation features {a_i^t} that drive the
// autocorrelation-based partitioning of Equation 8.
package predict

import (
	"math"

	"ppqtraj/internal/geo"
	"ppqtraj/internal/mat"
)

// Coefficients are the prediction weights P_1..P_k applied to the k most
// recent reconstructed points, most recent first: the prediction is
// Σ_j P_j · T̂^{t−j}.
type Coefficients []float64

// RandomWalk returns the fallback coefficients that predict the previous
// point (P = [1, 0, …, 0]) — used when a partition has too few
// observations to fit a least-squares model.
func RandomWalk(k int) Coefficients {
	c := make(Coefficients, k)
	if k > 0 {
		c[0] = 1
	}
	return c
}

// Predict applies the coefficients to history, which holds the previous
// reconstructed points oldest-first (history[len-1] is T̂^{t−1}). When the
// history is shorter than k, the available lags are used with the same
// leading coefficients; an empty history predicts the origin (the paper
// sets P_j[t] = 0 for t ≤ k, i.e. early points are quantized raw).
func Predict(c Coefficients, history []geo.Point) geo.Point {
	var p geo.Point
	n := len(history)
	for j := 0; j < len(c) && j < n; j++ {
		// lag j+1 ⇒ history[n-1-j]
		p = p.Add(history[n-1-j].Scale(c[j]))
	}
	return p
}

// Fit solves Equation 1 for one partition: find P minimizing
// Σ_i ‖T_i^t − Σ_j P_j·T̂_i^{t−j}‖². histories[i] holds the k previous
// reconstructed points of trajectory i oldest-first (all length ≥ k),
// targets[i] is the observed point. The x and y equations share the
// coefficients, so both are stacked into one least-squares system.
// Partitions with fewer observations than coefficients fall back to
// RandomWalk.
func Fit(k int, histories [][]geo.Point, targets []geo.Point) Coefficients {
	var f Fitter
	return f.Fit(k, histories, targets)
}

// Fitter owns the reusable design-matrix and solver scratch of repeated
// Fit calls, so the per-partition fits of the build loop stop allocating.
// The zero value is ready; a Fitter is not safe for concurrent use (each
// build worker owns one).
type Fitter struct {
	a  mat.Dense
	b  []float64
	ls mat.LSWorkspace
}

// Fit is the workspace form of the package-level Fit. The returned
// Coefficients are freshly allocated (they are retained by the summary).
func (f *Fitter) Fit(k int, histories [][]geo.Point, targets []geo.Point) Coefficients {
	if k < 1 {
		return nil
	}
	// Count usable rows: trajectories with a full k-history.
	usable := 0
	for _, h := range histories {
		if len(h) >= k {
			usable++
		}
	}
	if 2*usable < k+1 { // not enough equations for a stable fit
		return RandomWalk(k)
	}
	f.a.Rows, f.a.Cols = 2*usable, k
	if need := 2 * usable * k; cap(f.a.Data) < need {
		f.a.Data = make([]float64, need)
	} else {
		f.a.Data = f.a.Data[:need]
	}
	if cap(f.b) < 2*usable {
		f.b = make([]float64, 2*usable)
	} else {
		f.b = f.b[:2*usable]
	}
	a, b := &f.a, f.b
	row := 0
	for i, h := range histories {
		if len(h) < k {
			continue
		}
		n := len(h)
		for j := 0; j < k; j++ {
			prev := h[n-1-j]
			a.Set(row, j, prev.X)
			a.Set(row+1, j, prev.Y)
		}
		b[row] = targets[i].X
		b[row+1] = targets[i].Y
		row += 2
	}
	coeffs, err := f.ls.LeastSquares(a, b)
	if err != nil {
		return RandomWalk(k)
	}
	return QuantizeCoefficients(coeffs)
}

// QuantizeCoefficients rounds coefficients to the Q5.10 fixed-point grid
// (16 bits: range ±32, step 1/1024). The prediction residual is quantized
// against the ε₁-bounded codebook anyway, so coefficient precision beyond
// ~10 fractional bits buys nothing, while the summary stores 4× fewer
// bits per coefficient. Encoder and decoder both use the quantized values,
// so reconstructions stay bit-identical.
func QuantizeCoefficients(c Coefficients) Coefficients {
	out := make(Coefficients, len(c))
	for i, v := range c {
		g := math.Round(v * 1024)
		if g > 32767 {
			g = 32767
		}
		if g < -32768 {
			g = -32768
		}
		out[i] = g / 1024
	}
	return out
}

// CoefficientBits is the per-coefficient storage cost implied by
// QuantizeCoefficients.
const CoefficientBits = 16

// AutocorrFeature computes the lag-k autocorrelation feature a_i^t of a
// trajectory from its recent window of raw points: the AR(k) coefficients
// (Yule-Walker) of the *differenced* coordinate series, averaged over x
// and y into one k-dim vector. The paper derives AR(k) parameters of the
// position process (§3.2.1); positions over a short window are
// trend-dominated (non-stationary), which makes the raw-position fit
// numerically erratic, so we fit the increments — the standard
// stationarity transform — which yields stable, regime-clustered features
// for Equation 8 to partition on. Trajectories with similar motion
// regimes (smooth cruise, jittery walk, …) land close together.
func AutocorrFeature(window []geo.Point, k int) []float64 {
	var s ARScratch
	if len(window) == 0 {
		return make([]float64, k)
	}
	return s.FeatureInto(make([]float64, k),
		window[:len(window)-1], window[len(window)-1], k)
}

// ARScratch owns the buffers of repeated autocorrelation-feature
// estimates. The zero value is ready; not safe for concurrent use.
type ARScratch struct {
	xs, ys, ax, ay []float64
	ws             mat.ARWorkspace
}

// FeatureInto computes the lag-k autocorrelation feature of the point
// series prev[0], …, prev[len-1], cur into dst (len k) without
// materializing the concatenated window. It returns dst.
func (s *ARScratch) FeatureInto(dst []float64, prev []geo.Point, cur geo.Point, k int) []float64 {
	m := len(prev) // number of increments in the series prev…cur
	if m == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	if cap(s.xs) < m {
		s.xs = make([]float64, m)
		s.ys = make([]float64, m)
	}
	xs, ys := s.xs[:m], s.ys[:m]
	for i := 1; i < m; i++ {
		xs[i-1] = prev[i].X - prev[i-1].X
		ys[i-1] = prev[i].Y - prev[i-1].Y
	}
	xs[m-1] = cur.X - prev[m-1].X
	ys[m-1] = cur.Y - prev[m-1].Y
	if cap(s.ax) < k {
		s.ax = make([]float64, k)
		s.ay = make([]float64, k)
	}
	ax := s.ws.YuleWalkerInto(s.ax[:k], xs, k)
	ay := s.ws.YuleWalkerInto(s.ay[:k], ys, k)
	for i := range dst {
		dst[i] = (ax[i] + ay[i]) / 2
	}
	return dst
}

// ResidualMAE reports the mean absolute (Euclidean) prediction error of
// coefficients c over the given histories/targets — a model-quality
// diagnostic used by tests and the ablation benches.
func ResidualMAE(c Coefficients, histories [][]geo.Point, targets []geo.Point) float64 {
	if len(histories) == 0 {
		return 0
	}
	var s float64
	for i, h := range histories {
		s += targets[i].Dist(Predict(c, h))
	}
	return s / float64(len(histories))
}
