package predict

import (
	"math"
	"math/rand"
	"testing"

	"ppqtraj/internal/geo"
)

func TestRandomWalkPredictsPrevious(t *testing.T) {
	c := RandomWalk(3)
	h := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1), geo.Pt(2, 3)}
	if got := Predict(c, h); got != geo.Pt(2, 3) {
		t.Fatalf("Predict = %v, want previous point", got)
	}
}

func TestPredictEmptyHistory(t *testing.T) {
	c := RandomWalk(3)
	if got := Predict(c, nil); got != (geo.Point{}) {
		t.Fatalf("empty history should predict origin, got %v", got)
	}
}

func TestPredictShortHistory(t *testing.T) {
	c := Coefficients{0.5, 0.5, 0.0}
	h := []geo.Point{geo.Pt(2, 2)} // only one lag available
	if got := Predict(c, h); got != geo.Pt(1, 1) {
		t.Fatalf("short history prediction = %v, want (1,1)", got)
	}
}

func TestFitRecoversLinearDynamics(t *testing.T) {
	// Generate trajectories following T^t = 1.6·T^{t−1} − 0.6·T^{t−2}
	// (constant-velocity-ish dynamics) and check Fit recovers the weights.
	rng := rand.New(rand.NewSource(1))
	k := 2
	var histories [][]geo.Point
	var targets []geo.Point
	for i := 0; i < 200; i++ {
		p0 := geo.Pt(rng.Float64()*10, rng.Float64()*10)
		p1 := p0.Add(geo.Pt(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1))
		p2 := p1.Scale(1.6).Sub(p0.Scale(0.6))
		histories = append(histories, []geo.Point{p0, p1})
		targets = append(targets, p2)
	}
	c := Fit(k, histories, targets)
	// Coefficients come back on the Q5.10 fixed-point grid, so recovery is
	// exact to half a grid step.
	if math.Abs(c[0]-1.6) > 1.0/1024 || math.Abs(c[1]+0.6) > 1.0/1024 {
		t.Fatalf("coefficients = %v, want ≈[1.6 -0.6]", c)
	}
	if mae := ResidualMAE(c, histories, targets); mae > 0.05 {
		t.Fatalf("residual MAE %v too large for near-exact dynamics", mae)
	}
}

func TestFitFallsBackWithTooFewRows(t *testing.T) {
	c := Fit(3, [][]geo.Point{{geo.Pt(1, 1)}}, []geo.Point{geo.Pt(2, 2)})
	want := RandomWalk(3)
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("expected random-walk fallback, got %v", c)
		}
	}
	if got := Fit(0, nil, nil); got != nil {
		t.Fatalf("k=0 should return nil, got %v", got)
	}
}

func TestFitIgnoresShortHistories(t *testing.T) {
	// Mix of full and short histories: the short ones must not corrupt
	// the fit.
	rng := rand.New(rand.NewSource(2))
	var histories [][]geo.Point
	var targets []geo.Point
	for i := 0; i < 100; i++ {
		p0 := geo.Pt(rng.Float64(), rng.Float64())
		p1 := p0.Add(geo.Pt(0.01, 0.01))
		histories = append(histories, []geo.Point{p0, p1})
		targets = append(targets, p1.Scale(2).Sub(p0)) // constant velocity
	}
	histories = append(histories, []geo.Point{geo.Pt(999, 999)}) // short
	targets = append(targets, geo.Pt(-999, -999))
	c := Fit(2, histories, targets)
	if math.Abs(c[0]-2) > 1e-6 || math.Abs(c[1]+1) > 1e-6 {
		t.Fatalf("coefficients = %v, want [2 -1]", c)
	}
}

func TestFitPredictionBeatsRandomWalkOnSmoothMotion(t *testing.T) {
	// Smooth accelerating motion: a fitted model must out-predict the
	// previous-point fallback — this is the entire premise of E-PQ
	// (narrower error range than raw deltas).
	rng := rand.New(rand.NewSource(3))
	k := 3
	var histories [][]geo.Point
	var targets []geo.Point
	for i := 0; i < 300; i++ {
		base := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		vel := geo.Pt(rng.NormFloat64(), rng.NormFloat64())
		var pts []geo.Point
		for s := 0; s < k+1; s++ {
			pts = append(pts, base.Add(vel.Scale(float64(s))))
		}
		histories = append(histories, pts[:k])
		targets = append(targets, pts[k])
	}
	c := Fit(k, histories, targets)
	fitMAE := ResidualMAE(c, histories, targets)
	rwMAE := ResidualMAE(RandomWalk(k), histories, targets)
	if fitMAE >= rwMAE {
		t.Fatalf("fit MAE %v should beat random walk %v", fitMAE, rwMAE)
	}
}

func TestAutocorrFeatureSeparatesRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := 2
	// Regime A: smooth strongly-autocorrelated cruise.
	smooth := make([]geo.Point, 100)
	pos, vel := geo.Pt(0, 0), geo.Pt(0.1, 0.05)
	for i := range smooth {
		pos = pos.Add(vel)
		smooth[i] = pos
	}
	// Regime B: pure white noise (no autocorrelation in increments).
	noisy := make([]geo.Point, 100)
	for i := range noisy {
		noisy[i] = geo.Pt(rng.NormFloat64(), rng.NormFloat64())
	}
	fa := AutocorrFeature(smooth, k)
	fb := AutocorrFeature(noisy, k)
	var dist float64
	for i := range fa {
		d := fa[i] - fb[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.3 {
		t.Fatalf("regimes should be separated in feature space: %v vs %v", fa, fb)
	}
}

func TestAutocorrFeatureLength(t *testing.T) {
	f := AutocorrFeature(nil, 4)
	if len(f) != 4 {
		t.Fatalf("feature length %d, want 4", len(f))
	}
	for _, v := range f {
		if v != 0 {
			t.Fatal("empty window should give zero feature")
		}
	}
}

func TestResidualMAEEmpty(t *testing.T) {
	if got := ResidualMAE(RandomWalk(2), nil, nil); got != 0 {
		t.Fatalf("empty MAE = %v", got)
	}
}
