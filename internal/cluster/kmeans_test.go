package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blob generates n points around center with the given spread.
func blob(rng *rand.Rand, n int, cx, cy, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return out
}

func TestKMeansEmptyAndTrivial(t *testing.T) {
	if r := KMeans(nil, 3, 10, 1); r.K() != 0 || len(r.Assign) != 0 {
		t.Fatal("empty input should give empty result")
	}
	data := [][]float64{{1, 1}}
	r := KMeans(data, 5, 10, 1) // k clamped to n
	if r.K() != 1 || r.Assign[0] != 0 {
		t.Fatalf("single point: K=%d assign=%v", r.K(), r.Assign)
	}
	if r.Centroids[0][0] != 1 || r.Centroids[0][1] != 1 {
		t.Fatalf("centroid = %v", r.Centroids[0])
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := append(blob(rng, 100, 0, 0, 0.1), blob(rng, 100, 10, 10, 0.1)...)
	r := KMeans(data, 2, 50, 7)
	if r.K() != 2 {
		t.Fatalf("K = %d", r.K())
	}
	// All members of each blob should share a cluster.
	first := r.Assign[0]
	for i := 1; i < 100; i++ {
		if r.Assign[i] != first {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	second := r.Assign[100]
	if second == first {
		t.Fatal("blobs merged")
	}
	for i := 101; i < 200; i++ {
		if r.Assign[i] != second {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := blob(rng, 200, 0, 0, 5)
	a := KMeans(data, 4, 30, 99)
	b := KMeans(data, 4, 30, 99)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical assignments")
		}
	}
}

func TestKMeansCentroidIsMean(t *testing.T) {
	// With k=1 the centroid must be the arithmetic mean.
	data := [][]float64{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	r := KMeans(data, 1, 10, 3)
	if math.Abs(r.Centroids[0][0]-1) > 1e-12 || math.Abs(r.Centroids[0][1]-1) > 1e-12 {
		t.Fatalf("centroid = %v, want (1,1)", r.Centroids[0])
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// More clusters than distinct points: must not loop or divide by zero.
	data := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	r := KMeans(data, 3, 10, 5)
	if len(r.Assign) != 4 {
		t.Fatal("wrong assignment length")
	}
	for _, c := range r.Centroids {
		if math.IsNaN(c[0]) || math.IsNaN(c[1]) {
			t.Fatal("NaN centroid")
		}
	}
}

func TestKMeansHighDim(t *testing.T) {
	// The autocorrelation partitioner clusters k-dim AR coefficient
	// vectors; verify non-2-D data works.
	rng := rand.New(rand.NewSource(6))
	var data [][]float64
	for i := 0; i < 50; i++ {
		data = append(data, []float64{0.8 + rng.Float64()*0.01, 0.1, 0.0, 0.0})
	}
	for i := 0; i < 50; i++ {
		data = append(data, []float64{-0.5 + rng.Float64()*0.01, 0.3, 0.1, 0.0})
	}
	r := KMeans(data, 2, 20, 8)
	if r.Assign[0] == r.Assign[50] {
		t.Fatal("distinct AR regimes should separate")
	}
}

func TestMaxRadius(t *testing.T) {
	data := [][]float64{{0, 0}, {0, 4}}
	r := &Result{Centroids: [][]float64{{0, 0}}, Assign: []int{0, 0}}
	radii := r.MaxRadius(data)
	if len(radii) != 1 || math.Abs(radii[0]-4) > 1e-12 {
		t.Fatalf("radii = %v, want [4]", radii)
	}
}

func TestSizes(t *testing.T) {
	r := &Result{Centroids: [][]float64{{0}, {1}}, Assign: []int{0, 1, 1, 1}}
	s := r.Sizes()
	if s[0] != 1 || s[1] != 3 {
		t.Fatalf("Sizes = %v", s)
	}
}

func TestBoundedPartitionSatisfiesEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := append(blob(rng, 150, 0, 0, 0.3), blob(rng, 150, 5, 5, 0.3)...)
	data = append(data, blob(rng, 150, -5, 5, 0.3)...)
	eps := 1.5
	res, stats := BoundedPartition(data, BoundedOptions{Epsilon: eps, Seed: 11})
	for c, rad := range res.MaxRadius(data) {
		if rad > eps {
			t.Fatalf("cluster %d radius %v exceeds ε_p %v", c, rad, eps)
		}
	}
	if stats.FinalK < 3 {
		t.Fatalf("three well-separated blobs need ≥3 partitions, got %d", stats.FinalK)
	}
	if stats.Rounds < 1 || stats.Iterations < stats.Rounds {
		t.Fatalf("implausible stats %+v", stats)
	}
}

func TestBoundedPartitionSingleClusterWhenLooseEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := blob(rng, 100, 0, 0, 0.1)
	res, stats := BoundedPartition(data, BoundedOptions{Epsilon: 100, Seed: 13})
	if res.K() != 1 || stats.Rounds != 1 {
		t.Fatalf("loose ε_p should partition in one round into one cluster, got K=%d rounds=%d", res.K(), stats.Rounds)
	}
}

func TestBoundedPartitionMaxKCap(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Widely scattered points with a tiny epsilon would need n clusters;
	// the cap must stop growth.
	data := blob(rng, 200, 0, 0, 50)
	res, _ := BoundedPartition(data, BoundedOptions{Epsilon: 1e-6, MaxK: 10, Seed: 15})
	if res.K() > 10 {
		t.Fatalf("MaxK violated: K = %d", res.K())
	}
}

func TestBoundedPartitionStepGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var data [][]float64
	for c := 0; c < 6; c++ {
		data = append(data, blob(rng, 40, float64(c)*10, 0, 0.2)...)
	}
	res, stats := BoundedPartition(data, BoundedOptions{Epsilon: 2, Step: 2, Seed: 17})
	if res.K() < 6 {
		t.Fatalf("six blobs need ≥6 partitions, got %d", res.K())
	}
	// With Step=2 the sweep only ever tries q ∈ {1, 3, 5, …}; the
	// pigeonhole lower bound may skip guaranteed-failing rounds but must
	// stay on that grid, and at least one k-means round must have run.
	if res.K()%2 != 1 {
		t.Fatalf("step-2 sweep must land on odd q, got %d", res.K())
	}
	if stats.Rounds < 1 {
		t.Fatalf("expected ≥1 round, got %d", stats.Rounds)
	}
}

func TestBoundedPartitionEmpty(t *testing.T) {
	res, stats := BoundedPartition(nil, BoundedOptions{Epsilon: 1})
	if res.K() != 0 || stats.FinalK != 0 {
		t.Fatal("empty input should yield empty result")
	}
}

// TestBoundedPartitionProperty: for random data and random ε_p, the bound
// always holds on every resulting partition (the core §3.2.1 invariant).
func TestBoundedPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for iter := 0; iter < 25; iter++ {
		n := 20 + rng.Intn(200)
		data := make([][]float64, n)
		for i := range data {
			data[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
		}
		eps := 0.5 + rng.Float64()*5
		res, _ := BoundedPartition(data, BoundedOptions{Epsilon: eps, Seed: int64(iter)})
		for c, rad := range res.MaxRadius(data) {
			if rad > eps+1e-9 {
				t.Fatalf("iter %d: cluster %d radius %v > ε %v", iter, c, rad, eps)
			}
		}
	}
}

func BenchmarkKMeans2D(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	data := blob(rng, 5000, 0, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(data, 16, 20, 1)
	}
}
