// Package cluster provides the clustering substrate for PPQ-trajectory:
// Lloyd's k-means with k-means++ seeding [Lloyd 1982], and the
// bounded-radius partitioning loop of §3.2.1 that increases the number of
// partitions round by round until every partition satisfies the ε_p
// deviation constraint of Equations 7 and 8 (complexity O(q·m·N·l),
// Lemma 1).
//
// Vectors are generic []float64 so the same code clusters 2-D trajectory
// points (spatial partitioning, Eq. 7) and k-dimensional autocorrelation
// features (Eq. 8).
package cluster

import (
	"math"
	"math/rand"
)

// Result describes a clustering: one centroid per cluster and, for every
// input vector, the index of its assigned cluster.
type Result struct {
	Centroids [][]float64
	Assign    []int
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns the number of members per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus picks k initial centroids with the k-means++ rule: the first
// uniformly, each next with probability proportional to the squared
// distance from the nearest already-chosen centroid.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), data[rng.Intn(n)]...)
	centroids = append(centroids, first)
	d2 := make([]float64, n)
	for i, v := range data {
		d2[i] = dist2(v, first)
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next []float64
		if total <= 0 {
			// All remaining points coincide with existing centroids;
			// any point works.
			next = data[rng.Intn(n)]
		} else {
			target := rng.Float64() * total
			idx := n - 1
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
			next = data[idx]
		}
		c := append([]float64(nil), next...)
		centroids = append(centroids, c)
		for i, v := range data {
			if d := dist2(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// KMeans clusters data into k clusters with at most maxIter Lloyd
// iterations. It is deterministic for a given seed. k is clamped to
// [1, len(data)]; empty data yields an empty Result.
func KMeans(data [][]float64, k, maxIter int, seed int64) *Result {
	n := len(data)
	if n == 0 {
		return &Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(data, k, rng)
	assign := make([]int, n)
	dim := len(data[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range data {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(v, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter == 0 {
			changed = true
		}
		if !changed {
			break
		}
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep k effective clusters.
				far, farD := 0, -1.0
				for i, v := range data {
					if d := dist2(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], data[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] * inv
			}
		}
	}
	// Final assignment against the final centroids.
	for i, v := range data {
		best, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			if d := dist2(v, cent); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return &Result{Centroids: centroids, Assign: assign}
}

// MaxRadius returns, per cluster, the maximum distance from a member to
// its centroid — the left-hand side of Equations 7/8.
func (r *Result) MaxRadius(data [][]float64) []float64 {
	radii := make([]float64, len(r.Centroids))
	for i, v := range data {
		c := r.Assign[i]
		if d := math.Sqrt(dist2(v, r.Centroids[c])); d > radii[c] {
			radii[c] = d
		}
	}
	return radii
}

// BoundedOptions configures BoundedPartition.
type BoundedOptions struct {
	// Epsilon is ε_p: the maximum allowed distance from any member to its
	// partition centroid (Equations 7/8).
	Epsilon float64
	// Step is the per-round increment "a" of the partition count in
	// Lemma 1's proof. Defaults to 1.
	Step int
	// MaxIter bounds Lloyd iterations per round (the "l" in Lemma 1).
	// Defaults to 25.
	MaxIter int
	// MaxK caps the number of partitions as a safety valve for adversarial
	// inputs; 0 means no cap beyond len(data).
	MaxK int
	// Seed makes the clustering deterministic.
	Seed int64
}

func (o *BoundedOptions) defaults() {
	if o.Step < 1 {
		o.Step = 1
	}
	if o.MaxIter < 1 {
		o.MaxIter = 25
	}
}

// BoundedStats reports the work BoundedPartition did, feeding the Lemma 1
// complexity accounting and Figure 7/8 experiments.
type BoundedStats struct {
	Rounds     int // m: rounds of increasing q
	FinalK     int // q: resulting partition count
	Iterations int // total Lloyd iterations across rounds (≈ m·l)
}

// BoundedPartition partitions data into the smallest number of clusters
// (tried in increments of opts.Step) such that every cluster satisfies the
// ε_p radius bound. This is the §3.2.1 partitioning loop: run k-means with
// growing q until Equations 7/8 hold for all partitions.
func BoundedPartition(data [][]float64, opts BoundedOptions) (*Result, BoundedStats) {
	opts.defaults()
	n := len(data)
	var stats BoundedStats
	if n == 0 {
		return &Result{}, stats
	}
	maxK := n
	if opts.MaxK > 0 && opts.MaxK < maxK {
		maxK = opts.MaxK
	}
	k := 1
	for {
		stats.Rounds++
		res := KMeans(data, k, opts.MaxIter, opts.Seed+int64(k))
		stats.Iterations += opts.MaxIter
		ok := true
		for _, rad := range res.MaxRadius(data) {
			if rad > opts.Epsilon {
				ok = false
				break
			}
		}
		if ok || k >= maxK {
			stats.FinalK = res.K()
			return res, stats
		}
		k += opts.Step
		if k > maxK {
			k = maxK
		}
	}
}
