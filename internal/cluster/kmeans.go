// Package cluster provides the clustering substrate for PPQ-trajectory:
// Lloyd's k-means with k-means++ seeding [Lloyd 1982], and the
// bounded-radius partitioning loop of §3.2.1 that increases the number of
// partitions round by round until every partition satisfies the ε_p
// deviation constraint of Equations 7 and 8 (complexity O(q·m·N·l),
// Lemma 1).
//
// Vectors are generic []float64 so the same code clusters 2-D trajectory
// points (spatial partitioning, Eq. 7) and k-dimensional autocorrelation
// features (Eq. 8).
package cluster

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ppqtraj/internal/par"
)

// Result describes a clustering: one centroid per cluster and, for every
// input vector, the index of its assigned cluster.
type Result struct {
	Centroids [][]float64
	Assign    []int
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns the number of members per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, a := range r.Assign {
		sizes[a]++
	}
	return sizes
}

// dist2 is split so the dominant 2-D case (spatial features) inlines; the
// arithmetic matches the generic loop exactly (d₀² then +d₁²), so the 2-D
// path changes nothing but speed.
func dist2(a, b []float64) float64 {
	if len(a) == 2 && len(b) == 2 {
		dx := a[0] - b[0]
		dy := a[1] - b[1]
		return dx*dx + dy*dy
	}
	return dist2ND(a, b)
}

func dist2ND(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmScratch pools the per-call working buffers of KMeans (everything that
// does not escape into the Result). Only buffers live here — pooling
// cannot affect results.
type kmScratch struct {
	counts []int
	sumBuf []float64
	sums   [][]float64
	cx, cy []float64
	d2     []float64
}

var kmPool = sync.Pool{New: func() any { return new(kmScratch) }}

func (s *kmScratch) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// seedPlusPlus picks k initial centroids with the k-means++ rule: the first
// uniformly, each next with probability proportional to the squared
// distance from the nearest already-chosen centroid.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand, sc *kmScratch) [][]float64 {
	n := len(data)
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), data[rng.Intn(n)]...)
	centroids = append(centroids, first)
	d2 := sc.floats(&sc.d2, n)
	for i, v := range data {
		d2[i] = dist2(v, first)
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next []float64
		if total <= 0 {
			// All remaining points coincide with existing centroids;
			// any point works.
			next = data[rng.Intn(n)]
		} else {
			target := rng.Float64() * total
			idx := n - 1
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
			next = data[idx]
		}
		c := append([]float64(nil), next...)
		centroids = append(centroids, c)
		for i, v := range data {
			if d := dist2(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// KMeans clusters data into k clusters with at most maxIter Lloyd
// iterations. It is deterministic for a given seed. k is clamped to
// [1, len(data)]; empty data yields an empty Result.
func KMeans(data [][]float64, k, maxIter int, seed int64) *Result {
	n := len(data)
	if n == 0 {
		return &Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 1
	}
	dim := len(data[0])
	if k == 1 {
		// One cluster converges to the mean regardless of seeding — skip
		// the (comparatively expensive) rng warm-up and Lloyd loop. Every
		// bounded-partition sweep starts here, so this round is pure
		// overhead otherwise.
		centroid := make([]float64, dim)
		for _, v := range data {
			for j, x := range v {
				centroid[j] += x
			}
		}
		inv := 1 / float64(n)
		for j := range centroid {
			centroid[j] *= inv
		}
		return &Result{Centroids: [][]float64{centroid}, Assign: make([]int, n)}
	}
	var centroids [][]float64
	func() {
		sc := kmPool.Get().(*kmScratch)
		defer kmPool.Put(sc)
		rng := rand.New(rand.NewSource(seed))
		centroids = seedPlusPlus(data, k, rng, sc)
	}()
	return kmeansFrom(data, centroids, maxIter)
}

// kmeansFrom runs Lloyd's iterations from the given initial centroids
// (which it owns and mutates). It is the deterministic core shared by the
// seeded KMeans and the bounded-partition sweep.
func kmeansFrom(data [][]float64, centroids [][]float64, maxIter int) *Result {
	n := len(data)
	if n == 0 {
		return &Result{}
	}
	if maxIter < 1 {
		maxIter = 1
	}
	k := len(centroids)
	dim := len(data[0])
	if k == 1 {
		// One cluster converges to the mean regardless of the seed point.
		centroid := centroids[0]
		for j := range centroid {
			centroid[j] = 0
		}
		for _, v := range data {
			for j, x := range v {
				centroid[j] += x
			}
		}
		inv := 1 / float64(n)
		for j := range centroid {
			centroid[j] *= inv
		}
		return &Result{Centroids: centroids, Assign: make([]int, n)}
	}
	sc := kmPool.Get().(*kmScratch)
	defer kmPool.Put(sc)
	assign := make([]int, n)
	sumBuf := sc.floats(&sc.sumBuf, k*dim)
	if cap(sc.sums) < k {
		sc.sums = make([][]float64, k)
	}
	sums := sc.sums[:k]
	for i := range sums {
		sums[i] = sumBuf[i*dim : (i+1)*dim]
	}
	if cap(sc.counts) < k {
		sc.counts = make([]int, k)
	}
	counts := sc.counts[:k]
	// 2-D data (spatial features, the dominant workload) assigns against
	// flat centroid-coordinate arrays: same arithmetic and tie order as
	// the generic scan, minus the per-centroid slice indirection. The
	// per-point argmin writes are independent, so the scan fans out on
	// the worker pool for large inputs — bit-identical results under any
	// chunking.
	var cx, cy []float64
	if dim == 2 {
		cx = sc.floats(&sc.cx, k)
		cy = sc.floats(&sc.cy, k)
	}
	assignAll := func() bool {
		changed := false
		if dim == 2 {
			for c, cent := range centroids {
				cx[c], cy[c] = cent[0], cent[1]
			}
			var flag atomic.Bool
			par.For(par.Workers(0), n, 2048, func(_, lo, hi int) {
				ch := false
				for i := lo; i < hi; i++ {
					v := data[i]
					best := nearest2D(v[0], v[1], cx, cy)
					if assign[i] != best {
						ch = true
						assign[i] = best
					}
				}
				if ch {
					flag.Store(true)
				}
			})
			return flag.Load()
		}
		for i, v := range data {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(v, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				changed = true
				assign[i] = best
			}
		}
		return changed
	}
	converged := false
	for iter := 0; iter < maxIter; iter++ {
		changed := assignAll()
		if iter == 0 {
			changed = true
		}
		if !changed {
			converged = true
			break
		}
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep k effective clusters.
				far, farD := 0, -1.0
				for i, v := range data {
					if d := dist2(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], data[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] * inv
			}
		}
	}
	// Final assignment against the final centroids. A convergence break
	// means the last assignment already matches the current centroids
	// (they were not updated afterwards), so recomputing it would be a
	// no-op; only a maxIter exit needs the extra pass.
	if !converged {
		assignAll()
	}
	return &Result{Centroids: centroids, Assign: assign}
}

// nearest2D returns the index of the nearest (cx, cy) centroid to
// (px, py): first strict minimum, matching the generic scan.
func nearest2D(px, py float64, cx, cy []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := range cx {
		dx := px - cx[c]
		dy := py - cy[c]
		if d := dx*dx + dy*dy; d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// MaxRadius returns, per cluster, the maximum distance from a member to
// its centroid — the left-hand side of Equations 7/8.
func (r *Result) MaxRadius(data [][]float64) []float64 {
	radii := make([]float64, len(r.Centroids))
	for i, v := range data {
		c := r.Assign[i]
		if d := math.Sqrt(dist2(v, r.Centroids[c])); d > radii[c] {
			radii[c] = d
		}
	}
	return radii
}

// BoundedOptions configures BoundedPartition.
type BoundedOptions struct {
	// Epsilon is ε_p: the maximum allowed distance from any member to its
	// partition centroid (Equations 7/8).
	Epsilon float64
	// Step is the per-round increment "a" of the partition count in
	// Lemma 1's proof. Defaults to 1.
	Step int
	// MaxIter bounds Lloyd iterations per round (the "l" in Lemma 1).
	// Defaults to 25.
	MaxIter int
	// MaxK caps the number of partitions as a safety valve for adversarial
	// inputs; 0 means no cap beyond len(data).
	MaxK int
	// Seed makes the clustering deterministic.
	Seed int64
}

func (o *BoundedOptions) defaults() {
	if o.Step < 1 {
		o.Step = 1
	}
	if o.MaxIter < 1 {
		o.MaxIter = 25
	}
}

// BoundedStats reports the work BoundedPartition did, feeding the Lemma 1
// complexity accounting and Figure 7/8 experiments.
type BoundedStats struct {
	Rounds     int // m: rounds of increasing q
	FinalK     int // q: resulting partition count
	Iterations int // total Lloyd iterations across rounds (≈ m·l)
}

// BoundedPartition partitions data into the smallest number of clusters
// (tried in increments of opts.Step) such that every cluster satisfies the
// ε_p radius bound. This is the §3.2.1 partitioning loop: run k-means with
// growing q until Equations 7/8 hold for all partitions.
func BoundedPartition(data [][]float64, opts BoundedOptions) (*Result, BoundedStats) {
	opts.defaults()
	n := len(data)
	var stats BoundedStats
	if n == 0 {
		return &Result{}, stats
	}
	maxK := n
	if opts.MaxK > 0 && opts.MaxK < maxK {
		maxK = opts.MaxK
	}
	// The radius constraint is a k-center objective, so rounds seed with
	// the farthest-first (Gonzalez) prefix rather than k-means++: centers
	// land in every isolated cluster first, which is exactly what the
	// bound needs, and the first round usually passes. The same greedy
	// sequence yields a pigeonhole lower bound on the feasible k — points
	// pairwise more than 2ε apart cannot share a cluster of radius ≤ ε —
	// so the sweep can skip all rounds below it: they were guaranteed to
	// be rejected. The whole loop is deterministic with no rng.
	g := newGonzalez(data)
	k := 1
	if m := g.minFeasibleK(opts.Epsilon, maxK); m > 1 {
		for k < m {
			k += opts.Step
		}
		if k > maxK {
			k = maxK
		}
	}
	eps2 := opts.Epsilon * opts.Epsilon
	for {
		stats.Rounds++
		res := kmeansFrom(data, g.seeds(k), opts.MaxIter)
		stats.Iterations += opts.MaxIter
		// Radius check with early exit on the first violating member
		// (squared distances; no per-round radii allocation).
		ok := true
		for i, v := range data {
			if dist2(v, res.Centroids[res.Assign[i]]) > eps2 {
				ok = false
				break
			}
		}
		if ok || k >= maxK {
			stats.FinalK = res.K()
			return res, stats
		}
		k += opts.Step
		if k > maxK {
			k = maxK
		}
	}
}

// gonzalez incrementally computes the farthest-first traversal of data:
// picks[0] = data[0], each next pick the point farthest from all previous
// picks. Selection distances are non-increasing, which gives both the
// k-center seeds (the first k picks) and the pairwise-separation lower
// bound. O(n) per pick.
type gonzalez struct {
	data  [][]float64
	mind  []float64 // squared distance to the nearest pick so far
	picks []int
	dists []float64 // squared selection distance of each pick (pick 0: +Inf)
}

func newGonzalez(data [][]float64) *gonzalez {
	g := &gonzalez{
		data:  data,
		mind:  make([]float64, len(data)),
		picks: []int{0},
		dists: []float64{math.Inf(1)},
	}
	for i, v := range data {
		g.mind[i] = dist2(v, data[0])
	}
	return g
}

// extend grows the traversal to k picks (clamped to len(data)).
func (g *gonzalez) extend(k int) {
	for len(g.picks) < k && len(g.picks) < len(g.data) {
		far, farD := 0, -1.0
		for i, d := range g.mind {
			if d > farD {
				far, farD = i, d
			}
		}
		g.picks = append(g.picks, far)
		g.dists = append(g.dists, farD)
		fv := g.data[far]
		for i, v := range g.data {
			if d := dist2(v, fv); d < g.mind[i] {
				g.mind[i] = d
			}
		}
	}
}

// seeds returns k fresh centroid vectors at the first k picks (Lloyd
// mutates them, so each round gets copies).
func (g *gonzalez) seeds(k int) [][]float64 {
	g.extend(k)
	if k > len(g.picks) {
		k = len(g.picks)
	}
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = append([]float64(nil), g.data[g.picks[i]]...)
	}
	return out
}

// minFeasibleK lower-bounds the cluster count needed to satisfy the ε
// radius bound: the longest farthest-first prefix whose picks are
// pairwise more than 2ε apart (any k below it must put two of them in
// one cluster, forcing a radius above ε), capped at cap.
func (g *gonzalez) minFeasibleK(eps float64, cap int) int {
	if len(g.data) < 2 || eps <= 0 || cap < 2 {
		return 1
	}
	thresh := 4 * eps * eps // (2ε)², against squared selection distances
	m := 1
	for m < cap {
		g.extend(m + 1)
		if len(g.picks) <= m || g.dists[m] <= thresh {
			break
		}
		m++
	}
	return m
}
