package cqc

import (
	"math"
	"math/rand"
	"testing"

	"ppqtraj/internal/geo"
)

func TestNewCoderGeometry(t *testing.T) {
	// ε₁ = 0.001 (≈111 m), g_s = 50 m in degrees — the paper's defaults.
	gs := geo.MetersToDegrees(50)
	c := NewCoder(0.001, gs)
	// half = ceil(0.001/0.000450…) = 3 → n = 7.
	if c.GridN() != 7 {
		t.Fatalf("GridN = %d, want 7", c.GridN())
	}
	// depth: 7→4→2→1 = 3 levels → 6-bit codes ("short binary codes").
	if c.CodeBits() != 6 {
		t.Fatalf("CodeBits = %d, want 6", c.CodeBits())
	}
	if math.Abs(c.MaxDeviation()-math.Sqrt2/2*gs) > 1e-15 {
		t.Fatal("MaxDeviation formula wrong")
	}
}

func TestNewCoderPanicsOnBadParams(t *testing.T) {
	for _, p := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", p)
				}
			}()
			NewCoder(p[0], p[1])
		}()
	}
}

func TestEncodeDecodeCellRoundTripExhaustive(t *testing.T) {
	// The core CQC invariant: every real grid cell round-trips exactly.
	for _, params := range []struct{ eps, gs float64 }{
		{1, 1},                           // 3×3
		{2.5, 1},                         // 7×7
		{5, 1},                           // 11×11
		{2, 1},                           // 5×5 — the paper's worked example size
		{10, 1},                          // 21×21
		{0.001, geo.MetersToDegrees(50)}, // paper defaults
	} {
		c := NewCoder(params.eps, params.gs)
		n := c.GridN()
		if n%2 != 1 {
			t.Fatalf("grid side %d should be odd", n)
		}
		seen := map[Code]bool{}
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < n; iy++ {
				code := c.EncodeCell(ix, iy)
				if int(code.Len) != c.CodeBits() {
					t.Fatalf("n=%d: non-uniform code length %d (want %d)", n, code.Len, c.CodeBits())
				}
				if seen[code] {
					t.Fatalf("n=%d: duplicate code %v", n, code)
				}
				seen[code] = true
				gx, gy := c.DecodeCell(code)
				if gx != ix || gy != iy {
					t.Fatalf("n=%d: cell (%d,%d) decoded to (%d,%d)", n, ix, iy, gx, gy)
				}
			}
		}
	}
}

func TestEncodeCellPanicsOutsideGrid(t *testing.T) {
	c := NewCoder(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.EncodeCell(-1, 0)
}

func TestCenterCodeStable(t *testing.T) {
	c := NewCoder(2, 1) // 5×5, center (2,2)
	code := c.CenterCode()
	ix, iy := c.DecodeCell(code)
	if ix != 2 || iy != 2 {
		t.Fatalf("center decodes to (%d,%d)", ix, iy)
	}
}

func TestCodeString(t *testing.T) {
	c := Code{Bits: 0b001110, Len: 6}
	if c.String() != "001110" {
		t.Fatalf("String = %q", c.String())
	}
	if (Code{}).String() != "" {
		t.Fatal("empty code should render empty")
	}
}

// TestLemma3 is the paper's central CQC guarantee: after refinement the
// reconstruction error never exceeds (√2/2)·g_s, for any reconstruction
// within the ε₁ ball of the original.
func TestLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, params := range []struct{ eps, gs float64 }{
		{0.001, geo.MetersToDegrees(50)},
		{0.002, geo.MetersToDegrees(100)},
		{0.0005, geo.MetersToDegrees(10)},
		{3, 1},
	} {
		c := NewCoder(params.eps, params.gs)
		bound := c.MaxDeviation() + 1e-12
		for iter := 0; iter < 5000; iter++ {
			orig := geo.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			// Random displacement within the ε₁ circle.
			theta := rng.Float64() * 2 * math.Pi
			rad := rng.Float64() * params.eps
			recon := orig.Add(geo.Pt(math.Cos(theta)*rad, math.Sin(theta)*rad))
			code := c.Encode(orig, recon)
			refined := c.Refine(recon, code)
			if d := refined.Dist(orig); d > bound {
				t.Fatalf("eps=%v gs=%v: deviation %v > Lemma 3 bound %v",
					params.eps, params.gs, d, c.MaxDeviation())
			}
		}
	}
}

func TestRefineImprovesOverRawReconstruction(t *testing.T) {
	// On average CQC refinement must reduce error relative to the raw
	// codebook reconstruction (that is its purpose: Table 2, PPQ-x vs
	// PPQ-x-basic).
	rng := rand.New(rand.NewSource(2))
	c := NewCoder(0.001, geo.MetersToDegrees(50))
	var rawSum, refSum float64
	const iters = 2000
	for i := 0; i < iters; i++ {
		orig := geo.Pt(rng.Float64(), rng.Float64())
		theta := rng.Float64() * 2 * math.Pi
		rad := 0.2*0.001 + rng.Float64()*0.8*0.001 // mostly large errors
		recon := orig.Add(geo.Pt(math.Cos(theta)*rad, math.Sin(theta)*rad))
		rawSum += recon.Dist(orig)
		refSum += c.Refine(recon, c.Encode(orig, recon)).Dist(orig)
	}
	if refSum >= rawSum {
		t.Fatalf("refined MAE %v should beat raw %v", refSum/iters, rawSum/iters)
	}
}

func TestEncodeClampsOversizedDisplacement(t *testing.T) {
	c := NewCoder(1, 0.5)
	orig := geo.Pt(0, 0)
	recon := geo.Pt(100, -100)    // far outside the ε₁ ball
	code := c.Encode(orig, recon) // must not panic
	refined := c.Refine(recon, code)
	if !refined.IsFinite() {
		t.Fatal("non-finite refinement")
	}
}

func TestCodesAreSpatiallyConsistent(t *testing.T) {
	// Two reconstructions in the same cell must produce the same code.
	c := NewCoder(2, 1)
	orig := geo.Pt(0, 0)
	a := c.Encode(orig, geo.Pt(1.1, 0.9))
	b := c.Encode(orig, geo.Pt(0.9, 1.1))
	if a != b {
		t.Fatalf("same-cell reconstructions got different codes %v vs %v", a, b)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	small := NewCoder(2, 1)   // 5×5
	large := NewCoder(128, 1) // 257×257
	if large.CodeBits() > small.CodeBits()+14 {
		t.Fatalf("code length should grow logarithmically: %d vs %d",
			large.CodeBits(), small.CodeBits())
	}
	// 257 → 129 → 65 → 33 → 17 → 9 → 5 → 3 → 2 → 1: 9 levels → 18 bits.
	if large.CodeBits() != 18 {
		t.Fatalf("257×257 grid CodeBits = %d, want 18", large.CodeBits())
	}
}

func BenchmarkEncodeRefine(b *testing.B) {
	c := NewCoder(0.001, geo.MetersToDegrees(50))
	orig := geo.Pt(0.5, 0.5)
	recon := geo.Pt(0.5004, 0.4996)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code := c.Encode(orig, recon)
		c.Refine(recon, code)
	}
}
