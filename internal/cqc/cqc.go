// Package cqc implements Coordinate Quadtree Coding (§4 of the paper):
// short binary codes for the residual error space left by the
// error-bounded codebook.
//
// After quantization, the original point (x, y) lies within the ε₁-circle
// c₁ around the reconstruction (x̂, ŷ) — equivalently, (x̂, ŷ) lies within
// the circle around (x, y). CQC grids the minimum square S covering c₁
// into cells of size g_s and builds a *coordinate quadtree* over the grid
// (Algorithm 2): a quadtree whose nodes carry the coordinate of the
// subspace they represent, with per-quadrant padding so every split yields
// four equally-sized children (Figure 3). The code of a node is the
// concatenated 2-bit quadrant labels on the root-to-node path
// (Definition 4.2); Equations 9–10 recover the real position from a code.
//
// The original point sits, by construction, at the center cell of its own
// grid, so its code cqc₁ is a template constant; only the code cqc₂ of the
// reconstructed point is stored per sample. Reconstruction with CQC
// (Equation 11) then reduces the spatial deviation from ε₁ to at most
// (√2/2)·g_s (Lemma 3).
//
// Because the tree shape is fully determined by (ε₁, g_s), the template is
// never materialized: Encode and Decode replay the deterministic
// pad-and-split rules.
package cqc

import (
	"fmt"
	"math"

	"ppqtraj/internal/geo"
)

// Quadrant labels, matching Figure 3: 00 upper-left, 01 upper-right,
// 10 bottom-left, 11 bottom-right.
const (
	quadUpperLeft  = 0b00
	quadUpperRight = 0b01
	quadLowerLeft  = 0b10
	quadLowerRight = 0b11
)

// Code is a CQC code: Bits holds the 2-bit quadrant labels of the
// root-to-leaf path, most significant pair first; Len is the bit length.
// All codes of one Coder share the same length (padding equalizes child
// sizes, so the tree has uniform depth).
type Code struct {
	Bits uint64
	Len  uint8
}

// String renders the code as a binary string, e.g. "001110".
func (c Code) String() string {
	if c.Len == 0 {
		return ""
	}
	return fmt.Sprintf("%0*b", c.Len, c.Bits)
}

// Coder encodes/decodes cell positions of the residual grid. It is shared
// by all points of a summary (one per (ε₁, g_s) pair, §4.2: "a unified and
// fixed coordinate quadtree is obtained ... stored as a template").
type Coder struct {
	eps   float64 // ε₁: radius of the error circle
	gs    float64 // g_s: grid cell size
	n     int     // grid is n×n cells, n odd so a center cell exists
	m     int     // center cell index: (n−1)/2
	depth int     // uniform tree depth; code length is 2·depth bits

	// The tree shape is fixed by (ε₁, g_s) and grids are small, so both
	// directions memoize as tables: cell → code and code bits → Refine
	// offset. Encode/Refine run per point in the build hot loop; the
	// tables turn the quadtree walks into array loads. Nil for grids too
	// large to tabulate (the walk remains the fallback).
	codeTab []Code
	offTab  []geo.Point
}

// maxTableCodes bounds the memoization tables (4^depth entries).
const maxTableCodes = 1 << 16

// NewCoder builds the CQC template for the given error bound and grid
// cell size. It panics when either parameter is non-positive.
func NewCoder(eps1, gs float64) *Coder {
	if eps1 <= 0 || gs <= 0 {
		panic(fmt.Sprintf("cqc: invalid parameters ε₁=%v g_s=%v", eps1, gs))
	}
	// The square S covering the ε₁-circle spans [−ε₁, ε₁] in each axis.
	// Using an odd cell count keeps the original point exactly at the
	// center cell (§4.2). half cells cover [0, ε₁] beyond the center cell.
	half := int(math.Ceil(eps1 / gs))
	n := 2*half + 1
	d := 0
	for s := n; s > 1; s = (s + 1) / 2 {
		d++
	}
	c := &Coder{eps: eps1, gs: gs, n: n, m: half, depth: d}
	if codes := 1 << uint(2*d); codes <= maxTableCodes {
		c.codeTab = make([]Code, n*n)
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				c.codeTab[iy*n+ix] = c.encodeCellWalk(ix, iy)
			}
		}
		c.offTab = make([]geo.Point, codes)
		for bits := 0; bits < codes; bits++ {
			ix, iy := c.DecodeCell(Code{Bits: uint64(bits), Len: uint8(2 * d)})
			c.offTab[bits] = geo.Point{X: float64(ix-half) * gs, Y: float64(iy-half) * gs}
		}
	}
	return c
}

// GridN returns the grid side length in cells.
func (c *Coder) GridN() int { return c.n }

// CellSize returns g_s.
func (c *Coder) CellSize() float64 { return c.gs }

// Epsilon returns ε₁.
func (c *Coder) Epsilon() float64 { return c.eps }

// CodeBits returns the fixed code length in bits (2 bits per tree level).
// This is the per-point CQC storage cost used by the compression-ratio
// accounting (Figure 9).
func (c *Coder) CodeBits() int { return 2 * c.depth }

// MaxDeviation returns the Lemma 3 bound (√2/2)·g_s.
func (c *Coder) MaxDeviation() float64 { return math.Sqrt2 / 2 * c.gs }

// rect is a node's cell range [x0,x1)×[y0,y1) in grid coordinates; padding
// may push it outside [0, n).
type rect struct{ x0, y0, x1, y1 int }

func (r rect) w() int { return r.x1 - r.x0 }
func (r rect) h() int { return r.y1 - r.y0 }

// pad grows r to even width/height. The paper pads each subspace toward
// its own outer corner (Figure 3: quadrant 00 pads upper-left, 10
// bottom-left, 11 bottom-right), so padded cells of siblings never
// overlap real cells. dirX/dirY are −1 or +1: the corner this node pads
// toward.
func pad(r rect, dirX, dirY int) rect {
	if r.w()%2 == 1 {
		if dirX < 0 {
			r.x0--
		} else {
			r.x1++
		}
	}
	if r.h()%2 == 1 {
		if dirY < 0 {
			r.y0--
		} else {
			r.y1++
		}
	}
	return r
}

// quadDir returns the padding direction of a quadrant (toward its own
// corner). The root uses the upper-left convention of the paper's example
// (5×5 S expands toward the upper left, Figure 3a).
func quadDir(q int) (dx, dy int) {
	switch q {
	case quadUpperLeft:
		return -1, +1
	case quadUpperRight:
		return +1, +1
	case quadLowerLeft:
		return -1, -1
	default: // quadLowerRight
		return +1, -1
	}
}

// child returns the sub-rect of padded rect r for quadrant q. r must have
// even width and height. y grows upward: "upper" quadrants have larger y.
func child(r rect, q int) rect {
	mx := (r.x0 + r.x1) / 2
	my := (r.y0 + r.y1) / 2
	switch q {
	case quadUpperLeft:
		return rect{r.x0, my, mx, r.y1}
	case quadUpperRight:
		return rect{mx, my, r.x1, r.y1}
	case quadLowerLeft:
		return rect{r.x0, r.y0, mx, my}
	default:
		return rect{mx, r.y0, r.x1, my}
	}
}

// EncodeCell returns the CQC code of grid cell (ix, iy); both must be in
// [0, GridN()).
func (c *Coder) EncodeCell(ix, iy int) Code {
	if ix < 0 || ix >= c.n || iy < 0 || iy >= c.n {
		panic(fmt.Sprintf("cqc: cell (%d,%d) outside %d×%d grid", ix, iy, c.n, c.n))
	}
	if c.codeTab != nil {
		return c.codeTab[iy*c.n+ix]
	}
	return c.encodeCellWalk(ix, iy)
}

// encodeCellWalk is the quadtree walk behind EncodeCell (also used to
// fill the memo table).
func (c *Coder) encodeCellWalk(ix, iy int) Code {
	r := rect{0, 0, c.n, c.n}
	dirX, dirY := -1, +1 // root pads upper-left (paper's Figure 3a)
	var code Code
	for r.w() > 1 || r.h() > 1 {
		r = pad(r, dirX, dirY)
		mx := (r.x0 + r.x1) / 2
		my := (r.y0 + r.y1) / 2
		var q int
		switch {
		case ix < mx && iy >= my:
			q = quadUpperLeft
		case ix >= mx && iy >= my:
			q = quadUpperRight
		case ix < mx && iy < my:
			q = quadLowerLeft
		default:
			q = quadLowerRight
		}
		code.Bits = code.Bits<<2 | uint64(q)
		code.Len += 2
		r = child(r, q)
		dirX, dirY = quadDir(q)
	}
	return code
}

// DecodeCell inverts EncodeCell. Codes that navigate into padding cells
// yield coordinates outside [0, GridN()); callers that construct codes
// only via EncodeCell never see that.
func (c *Coder) DecodeCell(code Code) (ix, iy int) {
	r := rect{0, 0, c.n, c.n}
	dirX, dirY := -1, +1
	for shift := int(code.Len) - 2; shift >= 0; shift -= 2 {
		q := int(code.Bits>>uint(shift)) & 0b11
		r = pad(r, dirX, dirY)
		r = child(r, q)
		dirX, dirY = quadDir(q)
	}
	return r.x0, r.y0
}

// CenterCode returns cqc₁ — the code of the center cell where the
// original point always sits (§4.2). It is a template constant, never
// stored per point.
func (c *Coder) CenterCode() Code { return c.EncodeCell(c.m, c.m) }

// cellOf maps a displacement d = recon − orig (each axis within ±ε₁) to
// the grid cell of the reconstructed point, clamping boundary cases.
func (c *Coder) cellOf(d geo.Point) (int, int) {
	ix := c.m + int(math.Round(d.X/c.gs))
	iy := c.m + int(math.Round(d.Y/c.gs))
	if ix < 0 {
		ix = 0
	}
	if ix >= c.n {
		ix = c.n - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= c.n {
		iy = c.n - 1
	}
	return ix, iy
}

// Encode produces the stored per-point code cqc₂: the cell of the
// reconstructed point within the grid centered on the original point.
// ‖recon − orig‖ is expected to be ≤ ε₁ (the codebook bound); larger
// displacements are clamped to the grid edge, which weakens but never
// breaks reconstruction.
func (c *Coder) Encode(orig, recon geo.Point) Code {
	ix, iy := c.cellOf(recon.Sub(orig))
	return c.EncodeCell(ix, iy)
}

// Refine applies Equation 11: given the codebook reconstruction (x̂, ŷ)
// and its stored code cqc₂, return the CQC-refined reconstruction
// (x̂′, ŷ′), which is within (√2/2)·g_s of the original point (Lemma 3).
func (c *Coder) Refine(recon geo.Point, code Code) geo.Point {
	if c.offTab != nil && int(code.Len) == 2*c.depth && code.Bits < uint64(len(c.offTab)) {
		return recon.Sub(c.offTab[code.Bits])
	}
	ix, iy := c.DecodeCell(code)
	// Displacement of the reconstructed point's cell center from the grid
	// center (where the original point lives): g_s · (c_cqc2 − c_cqc1).
	off := geo.Point{X: float64(ix-c.m) * c.gs, Y: float64(iy-c.m) * c.gs}
	return recon.Sub(off)
}
