package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDegreeMeterConversion(t *testing.T) {
	// The paper's headline conversion: ε₁ = 0.001° ≈ 111 m.
	if got := DegreesToMeters(0.001); !almostEq(got, 111) {
		t.Fatalf("DegreesToMeters(0.001) = %v, want 111", got)
	}
	if got := MetersToDegrees(111); !almostEq(got, 0.001) {
		t.Fatalf("MetersToDegrees(111) = %v, want 0.001", got)
	}
}

func TestDegreeMeterRoundTrip(t *testing.T) {
	f := func(m float64) bool {
		m = math.Mod(m, 1e6)
		return math.Abs(DegreesToMeters(MetersToDegrees(m))-m) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); !almostEq(got, 5) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist2(Pt(3, 4)); !almostEq(got, 25) {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := Pt(3, 4).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestMaxDistToCentroid(t *testing.T) {
	pts := []Point{Pt(-1, 0), Pt(1, 0)}
	if got := MaxDistToCentroid(pts); !almostEq(got, 1) {
		t.Errorf("MaxDistToCentroid = %v, want 1", got)
	}
	if got := MaxDistToCentroid(nil); got != 0 {
		t.Errorf("MaxDistToCentroid(nil) = %v, want 0", got)
	}
	if got := MaxDistToCentroid([]Point{Pt(5, 5)}); got != 0 {
		t.Errorf("single point = %v, want 0", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 0, 1) // corners given out of order
	if r != (Rect{MinX: 0, MinY: 1, MaxX: 2, MaxY: 3}) {
		t.Fatalf("NewRect normalization failed: %v", r)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !almostEq(r.Width(), 2) || !almostEq(r.Height(), 2) || !almostEq(r.Area(), 4) {
		t.Errorf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(1, 2) {
		t.Errorf("Center = %v", r.Center())
	}
	if (Rect{}).Area() != 0 {
		t.Error("empty rect area != 0")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	if !r.Contains(Pt(0, 0)) {
		t.Error("min corner must be contained")
	}
	if r.Contains(Pt(1, 1)) {
		t.Error("max corner must not be contained (half-open)")
	}
	if !r.ContainsClosed(Pt(1, 1)) {
		t.Error("max corner must be contained in the closed test")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("rects should intersect")
	}
	got := a.Intersect(b)
	if got != NewRect(1, 1, 2, 2) {
		t.Errorf("Intersect = %v", got)
	}
	c := NewRect(5, 5, 6, 6)
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection should be empty")
	}
	// Touching edges share no interior.
	d := NewRect(2, 0, 4, 2)
	if a.Intersects(d) {
		t.Error("edge-touching rects share no interior")
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, 2, 3, 3)
	if got := a.Union(b); got != NewRect(0, 0, 3, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union = %v", got)
	}
	if got := a.Expand(1); got != NewRect(-1, -1, 2, 2) {
		t.Errorf("Expand = %v", got)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	r := BoundingRect(pts, 0)
	want := Rect{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if r != want {
		t.Fatalf("BoundingRect = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.ContainsClosed(p) {
			t.Errorf("point %v outside its bounding rect", p)
		}
	}
	if !BoundingRect(nil, 0).Empty() {
		t.Error("bounding rect of no points should be empty")
	}
	// With eps inflation every point is inside under the half-open rule.
	r = BoundingRect(pts, 1e-9)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("point %v outside inflated bounding rect", p)
		}
	}
}

func TestSubtractDisjoint(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(5, 5, 6, 6)
	got := r.Subtract(s)
	if len(got) != 1 || got[0] != r {
		t.Fatalf("Subtract with disjoint rect = %v", got)
	}
}

func TestSubtractFullyCovered(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(-1, -1, 2, 2)
	if got := r.Subtract(s); len(got) != 0 {
		t.Fatalf("fully covered subtract = %v, want empty", got)
	}
}

func TestSubtractCorner(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	s := NewRect(1, 1, 3, 3) // overlaps the top-right corner
	pieces := r.Subtract(s)
	var area float64
	for _, p := range pieces {
		area += p.Area()
	}
	if !almostEq(area, 3) {
		t.Fatalf("remaining area = %v, want 3 (pieces %v)", area, pieces)
	}
	assertDisjoint(t, pieces)
}

func TestSubtractHole(t *testing.T) {
	r := NewRect(0, 0, 3, 3)
	s := NewRect(1, 1, 2, 2) // strictly interior hole
	pieces := r.Subtract(s)
	var area float64
	for _, p := range pieces {
		area += p.Area()
	}
	if !almostEq(area, 8) {
		t.Fatalf("remaining area = %v, want 8", area)
	}
	assertDisjoint(t, pieces)
	// The hole must not be covered by any piece.
	for _, p := range pieces {
		if p.Intersects(s) {
			t.Errorf("piece %v overlaps subtracted region", p)
		}
	}
}

func assertDisjoint(t *testing.T, rects []Rect) {
	t.Helper()
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				t.Errorf("pieces %v and %v overlap", rects[i], rects[j])
			}
		}
	}
}

// TestSubtractProperty checks, with random rectangles, that subtraction
// preserves area and produces disjoint pieces that avoid the subtrahend.
func TestSubtractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		r := NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		s := NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		pieces := r.Subtract(s)
		assertDisjoint(t, pieces)
		var area float64
		for _, p := range pieces {
			area += p.Area()
			if p.Intersects(s) {
				t.Fatalf("piece %v intersects subtrahend %v", p, s)
			}
			if p.Intersect(r) != p {
				t.Fatalf("piece %v escapes minuend %v", p, r)
			}
		}
		want := r.Area() - r.Intersect(s).Area()
		if math.Abs(area-want) > 1e-9 {
			t.Fatalf("area %v, want %v (r=%v s=%v)", area, want, r, s)
		}
	}
}

func TestSubtractAll(t *testing.T) {
	r := NewRect(0, 0, 4, 4)
	subs := []Rect{NewRect(0, 0, 2, 2), NewRect(2, 2, 4, 4)}
	pieces := r.SubtractAll(subs)
	var area float64
	for _, p := range pieces {
		area += p.Area()
	}
	if !almostEq(area, 8) {
		t.Fatalf("area = %v, want 8", area)
	}
	assertDisjoint(t, pieces)
	// Full coverage leaves nothing.
	if got := r.SubtractAll([]Rect{r}); len(got) != 0 {
		t.Fatalf("SubtractAll self = %v", got)
	}
}

func TestSubtractAllProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		r := NewRect(0, 0, 10, 10)
		var subs []Rect
		for i := 0; i < 4; i++ {
			x, y := rng.Float64()*10, rng.Float64()*10
			subs = append(subs, NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5))
		}
		pieces := r.SubtractAll(subs)
		assertDisjoint(t, pieces)
		for _, p := range pieces {
			for _, s := range subs {
				if p.Intersects(s) {
					t.Fatalf("piece %v intersects %v", p, s)
				}
			}
		}
		// Monte-Carlo containment check: every random point of r is either
		// in some subtrahend or in exactly one piece.
		for probe := 0; probe < 50; probe++ {
			pt := Pt(rng.Float64()*10, rng.Float64()*10)
			inSub := false
			for _, s := range subs {
				if s.Contains(pt) {
					inSub = true
					break
				}
			}
			n := 0
			for _, p := range pieces {
				if p.Contains(pt) {
					n++
				}
			}
			if inSub && n != 0 {
				t.Fatalf("point %v in subtrahend but covered by %d pieces", pt, n)
			}
			if !inSub && n != 1 {
				t.Fatalf("point %v covered by %d pieces, want 1", pt, n)
			}
		}
	}
}
