// Package geo provides the planar geometry primitives used throughout
// ppqtraj: points, rectangles, distance computations, rectangle
// subtraction/decomposition (the remove_overlap step of Algorithm 3), and
// the degree↔meter conversions the paper uses to report spatial deviations
// in meters (ε₁ = 0.001° ≈ 111 m, [Chang 2008]).
//
// All coordinates are float64 pairs. Trajectory data is stored in
// longitude/latitude order (X = longitude, Y = latitude) to match the
// datasets, but nothing in this package assumes geographic semantics except
// the explicit conversion helpers.
package geo

import (
	"fmt"
	"math"
)

// MetersPerDegree is the approximate ground distance of one degree of
// latitude (and of longitude at the equator). The paper uses the same
// flat conversion when reporting ε₁ in meters: 0.001° ≈ 111 m.
const MetersPerDegree = 111000.0

// DegreesToMeters converts a coordinate-space distance (degrees) to meters
// using the paper's flat conversion.
func DegreesToMeters(deg float64) float64 { return deg * MetersPerDegree }

// MetersToDegrees converts a ground distance in meters to coordinate-space
// degrees using the paper's flat conversion.
func MetersToDegrees(m float64) float64 { return m / MetersPerDegree }

// Point is a position in the plane. For geographic data X is longitude and
// Y is latitude.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It is the
// preferred comparison form in hot loops (no square root).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }

// Centroid returns the arithmetic mean of pts. It returns the zero Point
// for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}

// MaxDistToCentroid returns the maximum distance from any point in pts to
// their centroid — the quantity bounded by ε_p in Equations 7 and 8.
func MaxDistToCentroid(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	c := Centroid(pts)
	max := 0.0
	for _, p := range pts {
		if d := p.Dist(c); d > max {
			max = d
		}
	}
	return max
}

// Rect is an axis-aligned rectangle, closed on the min edges and open on
// the max edges ([MinX,MaxX) × [MinY,MaxY)) so that adjacent rectangles in
// a decomposition tile the plane without double-counting boundary points.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corners, normalizing the
// order of the bounds.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

// Empty reports whether r has zero (or negative) area.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// IsFinite reports whether all four bounds are finite numbers.
func (r Rect) IsFinite() bool {
	return (Point{X: r.MinX, Y: r.MinY}).IsFinite() && (Point{X: r.MaxX, Y: r.MaxY}).IsFinite()
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r (zero for empty rectangles).
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies in r (min-closed, max-open).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies in r treating all edges as closed.
// The minimum bounding rectangle of a point set must use this form so that
// points on the max edge are still covered.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share any interior area.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle covering both r and s. Empty inputs
// are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// DistToRect is the Euclidean distance from p to the closed rectangle r
// (zero when p is inside).
func (p Point) DistToRect(r Rect) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// MinDist is the minimum distance between the closed rectangles r and s
// (zero when they overlap or touch).
func (r Rect) MinDist(s Rect) float64 {
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist is the maximum over points p of r of dist(p, s); for
// axis-aligned rectangles both axis terms are maximized at a corner.
func (r Rect) MaxDist(s Rect) float64 {
	dx := math.Max(0, math.Max(s.MinX-r.MinX, r.MaxX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MinY, r.MaxY-s.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6f,%.6f]x[%.6f,%.6f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// BoundingRect returns the minimum rectangle covering pts, inflated by eps
// on the max edges so every point is strictly inside under the min-closed /
// max-open convention. It returns an empty Rect for no points.
func BoundingRect(pts []Point, eps float64) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	r.MaxX += eps
	r.MaxY += eps
	return r
}

// Subtract returns r minus s decomposed into at most four disjoint
// rectangles. This is the polygon-to-rectangle conversion step used by
// Algorithm 3's remove_overlap [Gourley & Green 1983]: the part of a new
// region that overlaps already-indexed regions is cut away and the
// remainder is re-expressed as rectangles.
func (r Rect) Subtract(s Rect) []Rect {
	return r.appendSubtract(nil, s)
}

// appendSubtract appends r minus s (at most four disjoint rectangles)
// to dst — the allocation-free core of Subtract/SubtractAll.
func (r Rect) appendSubtract(dst []Rect, s Rect) []Rect {
	if r.Empty() {
		return dst
	}
	is := r.Intersect(s)
	if is.Empty() {
		return append(dst, r)
	}
	// Left slab.
	if r.MinX < is.MinX {
		dst = append(dst, Rect{MinX: r.MinX, MinY: r.MinY, MaxX: is.MinX, MaxY: r.MaxY})
	}
	// Right slab.
	if is.MaxX < r.MaxX {
		dst = append(dst, Rect{MinX: is.MaxX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY})
	}
	// Bottom slab (between the vertical slabs).
	if r.MinY < is.MinY {
		dst = append(dst, Rect{MinX: is.MinX, MinY: r.MinY, MaxX: is.MaxX, MaxY: is.MinY})
	}
	// Top slab.
	if is.MaxY < r.MaxY {
		dst = append(dst, Rect{MinX: is.MinX, MinY: is.MaxY, MaxX: is.MaxX, MaxY: r.MaxY})
	}
	return dst
}

// SubtractAll returns r minus every rectangle in subs, as a set of disjoint
// rectangles. The result may be empty when subs jointly cover r. Two
// ping-pong buffers carry the intermediate pieces, so a call allocates at
// most twice no matter how many rectangles are subtracted.
func (r Rect) SubtractAll(subs []Rect) []Rect {
	remain := []Rect{r}
	var next []Rect
	for _, s := range subs {
		if len(remain) == 0 {
			return nil
		}
		next = next[:0]
		for _, piece := range remain {
			next = piece.appendSubtract(next, s)
		}
		remain, next = next, remain
	}
	return remain
}
