// Package admit is the serving layer's overload valve: it decides, before
// any work happens, whether a request may run now, wait briefly, or must
// be shed. Three mechanisms compose:
//
//   - A bounded in-flight semaphore per endpoint class (ingest vs query)
//     caps concurrent work, so a traffic spike cannot pile up goroutines,
//     memory, and lock convoys until the process collapses.
//   - A bounded wait queue in front of each semaphore absorbs short
//     bursts: a request that finds every slot busy waits up to MaxWait for
//     one, but only while the queue itself has room — a full queue sheds
//     immediately, which is what keeps queueing delay (and therefore
//     served-request latency) bounded no matter the offered load.
//   - A per-client token bucket throttles individual heavy hitters before
//     they reach the shared semaphores, so one chatty client degrades its
//     own experience, not everyone's.
//
// A shed request gets a Rejection carrying the HTTP status to return
// (429) and a Retry-After hint computed from the current queue depth —
// clients that honor it spread the retry storm instead of synchronizing
// it. The controller never blocks longer than MaxWait and never allocates
// per admitted request beyond the release closure.
package admit

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppqtraj/internal/obs"
)

// Class names an endpoint family with its own in-flight budget. Ingest
// and query traffic are capped independently: a write burst must not
// starve reads of their slots, and vice versa.
type Class int

const (
	// Ingest covers mutating endpoints (/v1/ingest, /v1/flush).
	Ingest Class = iota
	// Query covers read endpoints (/v1/query, /v1/window).
	Query
	numClasses
)

// String returns the class's stats key.
func (c Class) String() string {
	switch c {
	case Ingest:
		return "ingest"
	case Query:
		return "query"
	}
	return "unknown"
}

// Options configures a Controller. The zero value enables admission with
// generous defaults; set a field negative to disable that mechanism.
type Options struct {
	// MaxInFlightIngest caps concurrently running ingest-class requests
	// (default 64; negative = unlimited).
	MaxInFlightIngest int
	// MaxInFlightQuery caps concurrently running query-class requests
	// (default 256; negative = unlimited).
	MaxInFlightQuery int
	// MaxQueue bounds how many requests may wait for a slot per class
	// (default 4× the class's in-flight cap; negative = no queue, i.e.
	// shed the instant every slot is busy).
	MaxQueue int
	// MaxWait bounds how long one request waits for a slot before it is
	// shed (default 100ms). This is the queueing-delay budget: served
	// requests never carry more than MaxWait of admission latency.
	MaxWait time.Duration
	// ClientRate is the per-client steady-state request budget in
	// requests/second, enforced with a token bucket keyed by the client
	// key (X-Client-ID header or remote host). 0 disables quotas.
	ClientRate float64
	// ClientBurst is the bucket depth (default 4× ClientRate, min 8).
	ClientBurst int
	// Metrics, when set, registers a per-class admission-wait histogram
	// (ppq_admission_wait_seconds). Fast-path admissions observe zero
	// without reading the clock, so the uncontended path stays cheap;
	// queued admissions observe their real wait.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxInFlightIngest == 0 {
		o.MaxInFlightIngest = 64
	}
	if o.MaxInFlightQuery == 0 {
		o.MaxInFlightQuery = 256
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 100 * time.Millisecond
	}
	if o.ClientBurst <= 0 {
		o.ClientBurst = int(4 * o.ClientRate)
		if o.ClientBurst < 8 {
			o.ClientBurst = 8
		}
	}
	return o
}

// Rejection tells the transport layer how to shed a request.
type Rejection struct {
	// Status is the HTTP status to return (always 429 today; a field so
	// transports never hard-code the mapping).
	Status int
	// RetryAfter is the suggested client back-off, derived from the
	// rejecting mechanism's current pressure.
	RetryAfter time.Duration
	// Reason is a short machine-readable cause: "queue_full",
	// "slot_wait_timeout", or "client_quota".
	Reason string
}

// gate is one class's bounded in-flight semaphore plus bounded wait
// queue.
type gate struct {
	slots    chan struct{} // nil = unlimited
	maxQueue int
	maxWait  time.Duration
	waitHist *obs.Histogram // nil without Options.Metrics

	queued    atomic.Int64
	inflight  atomic.Int64
	highWater atomic.Int64 // max observed inflight, for tests and stats
	admitted  atomic.Int64
	shed      atomic.Int64
}

func newGate(maxInFlight, maxQueue int, maxWait time.Duration) *gate {
	g := &gate{maxWait: maxWait}
	if maxInFlight > 0 {
		g.slots = make(chan struct{}, maxInFlight)
		g.maxQueue = maxQueue
		if maxQueue == 0 {
			g.maxQueue = 4 * maxInFlight
		}
	}
	return g
}

// acquire claims a slot, waiting up to maxWait while the queue has room.
// ok=false means shed; the returned Rejection says why and for how long
// to back off.
func (g *gate) acquire(ctx context.Context) (ok bool, rej Rejection) {
	if g.slots == nil {
		g.enter()
		g.observeWait(0)
		return true, Rejection{}
	}
	select {
	case g.slots <- struct{}{}:
		g.enter()
		g.observeWait(0)
		return true, Rejection{}
	default:
	}
	// Every slot is busy. Queue if there is room, shed otherwise — an
	// unbounded queue is just a slow-motion collapse.
	if g.maxQueue <= 0 || int(g.queued.Load()) >= g.maxQueue {
		g.shed.Add(1)
		return false, Rejection{Status: 429, RetryAfter: g.retryAfter(), Reason: "queue_full"}
	}
	start := time.Now()
	g.queued.Add(1)
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.enter()
		g.observeWait(time.Since(start).Seconds())
		return true, Rejection{}
	case <-timer.C:
		g.shed.Add(1)
		return false, Rejection{Status: 429, RetryAfter: g.retryAfter(), Reason: "slot_wait_timeout"}
	case <-ctx.Done():
		g.shed.Add(1)
		return false, Rejection{Status: 429, RetryAfter: g.retryAfter(), Reason: "client_gone"}
	}
}

// observeWait records an admitted request's slot wait. The uncontended
// path passes a constant 0 so it never reads the clock.
func (g *gate) observeWait(seconds float64) {
	if g.waitHist != nil {
		g.waitHist.Observe(seconds)
	}
}

// enter books an admitted request's counters.
func (g *gate) enter() {
	g.admitted.Add(1)
	n := g.inflight.Add(1)
	for {
		hw := g.highWater.Load()
		if n <= hw || g.highWater.CompareAndSwap(hw, n) {
			break
		}
	}
}

// release returns the slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	if g.slots != nil {
		<-g.slots
	}
}

// retryAfter estimates how long until a slot frees up for a new arrival:
// one MaxWait round per full queue of waiters ahead of it, at least one
// second so naive clients do not hammer in a tight loop.
func (g *gate) retryAfter() time.Duration {
	d := time.Second
	if g.maxQueue > 0 {
		rounds := 1 + int(g.queued.Load())/g.maxQueue
		if est := time.Duration(rounds) * g.maxWait; est > d {
			d = est
		}
	}
	return d
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// buckets is the per-client quota table. Buckets are materialized on
// first use and swept when the table grows past maxClients — a stale
// bucket is by definition full, so dropping it loses nothing.
type buckets struct {
	rate  float64
	burst float64

	mu sync.Mutex
	m  map[string]*bucket

	rejected atomic.Int64
}

const maxClients = 1 << 16

func (b *buckets) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.m[key]
	if bk == nil {
		if len(b.m) >= maxClients {
			b.sweepLocked(now)
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[key] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens += dt * b.rate
		if bk.tokens > b.burst {
			bk.tokens = b.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	b.rejected.Add(1)
	// Time until one whole token accrues, rounded up to a second for
	// header-friendliness.
	need := (1 - bk.tokens) / b.rate
	d := time.Duration(need * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return false, d
}

// sweepLocked drops buckets idle long enough to have refilled — they
// carry no quota state a fresh bucket would not.
func (b *buckets) sweepLocked(now time.Time) {
	idle := time.Duration(b.burst / b.rate * float64(time.Second))
	if idle < time.Second {
		idle = time.Second
	}
	for k, bk := range b.m {
		if now.Sub(bk.last) > idle {
			delete(b.m, k)
		}
	}
}

// Controller is the server-wide admission state: one gate per class plus
// the shared client-quota table. All methods are safe for concurrent use.
type Controller struct {
	opts  Options
	gates [numClasses]*gate
	quota *buckets // nil when ClientRate == 0
}

// New builds a Controller. A nil Controller is valid and admits
// everything (the memory-only / tests-off configuration).
func New(opts Options) *Controller {
	opts = opts.withDefaults()
	c := &Controller{opts: opts}
	c.gates[Ingest] = newGate(opts.MaxInFlightIngest, opts.MaxQueue, opts.MaxWait)
	c.gates[Query] = newGate(opts.MaxInFlightQuery, opts.MaxQueue, opts.MaxWait)
	if opts.Metrics != nil {
		hv := opts.Metrics.HistogramVec("ppq_admission_wait_seconds",
			"Slot wait of admitted requests (0 = uncontended fast path).",
			"class", obs.LatencyBuckets)
		c.gates[Ingest].waitHist = hv.With(Ingest.String())
		c.gates[Query].waitHist = hv.With(Query.String())
	}
	if opts.ClientRate > 0 {
		c.quota = &buckets{rate: opts.ClientRate, burst: float64(opts.ClientBurst), m: make(map[string]*bucket)}
	}
	return c
}

// Admit runs the full admission decision for one request: client quota
// first (cheap, and a throttled client must not consume queue room), then
// the class gate. On success the caller must invoke release exactly once
// when the work is done.
func (c *Controller) Admit(ctx context.Context, class Class, clientKey string) (release func(), rej Rejection, ok bool) {
	if c == nil {
		return func() {}, Rejection{}, true
	}
	if c.quota != nil && clientKey != "" {
		if allowed, after := c.quota.allow(clientKey, time.Now()); !allowed {
			return nil, Rejection{Status: 429, RetryAfter: after, Reason: "client_quota"}, false
		}
	}
	g := c.gates[class]
	admitted, rej := g.acquire(ctx)
	if !admitted {
		return nil, rej, false
	}
	return g.release, Rejection{}, true
}

// ClientKey derives the quota key for an HTTP request: the X-Client-ID
// header when present (load balancers and SDKs set it per tenant),
// otherwise the remote host with the port stripped so one client's
// parallel connections share a bucket.
func ClientKey(header func(string) string, remoteAddr string) string {
	if id := header("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return strings.TrimSpace(remoteAddr)
}

// GateStats is one class's admission counters.
type GateStats struct {
	MaxInFlight int   `json:"max_in_flight"` // 0 = unlimited
	InFlight    int64 `json:"in_flight"`
	HighWater   int64 `json:"in_flight_high_water"`
	Queued      int64 `json:"queued"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
}

// Stats is the /v1/stats admission section.
type Stats struct {
	Ingest        GateStats `json:"ingest"`
	Query         GateStats `json:"query"`
	QuotaRejected int64     `json:"quota_rejected"`
	QuotaClients  int       `json:"quota_clients"`
}

// Snapshot returns a point-in-time view of the controller's counters.
func (c *Controller) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	var st Stats
	st.Ingest = c.gates[Ingest].snapshot()
	st.Query = c.gates[Query].snapshot()
	if c.quota != nil {
		st.QuotaRejected = c.quota.rejected.Load()
		c.quota.mu.Lock()
		st.QuotaClients = len(c.quota.m)
		c.quota.mu.Unlock()
	}
	return st
}

func (g *gate) snapshot() GateStats {
	return GateStats{
		MaxInFlight: cap(g.slots),
		InFlight:    g.inflight.Load(),
		HighWater:   g.highWater.Load(),
		Queued:      g.queued.Load(),
		Admitted:    g.admitted.Load(),
		Shed:        g.shed.Load(),
	}
}
