package admit

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateCapsInFlight(t *testing.T) {
	c := New(Options{MaxInFlightIngest: 3, MaxQueue: -1, MaxWait: time.Millisecond})
	ctx := context.Background()

	var releases []func()
	for i := 0; i < 3; i++ {
		release, _, ok := c.Admit(ctx, Ingest, "")
		if !ok {
			t.Fatalf("admit %d rejected with free slots", i)
		}
		releases = append(releases, release)
	}
	// Every slot busy and no queue: the fourth must shed immediately.
	_, rej, ok := c.Admit(ctx, Ingest, "")
	if ok {
		t.Fatal("fourth request admitted past the in-flight cap")
	}
	if rej.Status != 429 || rej.RetryAfter <= 0 || rej.Reason != "queue_full" {
		t.Fatalf("rejection = %+v", rej)
	}
	releases[0]()
	if _, _, ok := c.Admit(ctx, Ingest, ""); !ok {
		t.Fatal("request rejected after a slot was released")
	}
	st := c.Snapshot()
	if st.Ingest.HighWater != 3 || st.Ingest.Shed != 1 {
		t.Fatalf("stats = %+v", st.Ingest)
	}
}

func TestGateQueueAbsorbsBurst(t *testing.T) {
	// One slot, deep queue: a waiter parked behind a slow request must be
	// admitted when the slot frees within MaxWait.
	c := New(Options{MaxInFlightIngest: 1, MaxQueue: 4, MaxWait: 2 * time.Second})
	ctx := context.Background()
	release, _, ok := c.Admit(ctx, Ingest, "")
	if !ok {
		t.Fatal("first admit failed")
	}
	done := make(chan bool, 1)
	go func() {
		r2, _, ok := c.Admit(ctx, Ingest, "")
		if ok {
			r2()
		}
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	release()
	if !<-done {
		t.Fatal("queued request was shed although the slot freed in time")
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	c := New(Options{MaxInFlightIngest: 1, MaxQueue: 2, MaxWait: 50 * time.Millisecond})
	ctx := context.Background()
	release, _, ok := c.Admit(ctx, Ingest, "")
	if !ok {
		t.Fatal("first admit failed")
	}
	defer release()

	// Saturate the queue with two parked waiters (the slot never frees).
	var wg sync.WaitGroup
	var timedOut atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, rej, ok := c.Admit(ctx, Ingest, ""); !ok && rej.Reason == "slot_wait_timeout" {
				timedOut.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(time.Second)
	for int(c.gates[Ingest].queued.Load()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: an extra arrival sheds instantly, well before MaxWait.
	start := time.Now()
	_, rej, ok := c.Admit(ctx, Ingest, "")
	if ok || rej.Reason != "queue_full" {
		t.Fatalf("expected queue_full shed, got ok=%v rej=%+v", ok, rej)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("queue-full shed took %v (should not wait)", d)
	}
	wg.Wait()
	if timedOut.Load() != 2 {
		t.Fatalf("%d waiters timed out, want 2", timedOut.Load())
	}
}

func TestClientQuota(t *testing.T) {
	c := New(Options{ClientRate: 10, ClientBurst: 3, MaxWait: time.Millisecond})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		release, rej, ok := c.Admit(ctx, Query, "tenant-a")
		if !ok {
			t.Fatalf("burst request %d rejected: %+v", i, rej)
		}
		release()
	}
	_, rej, ok := c.Admit(ctx, Query, "tenant-a")
	if ok {
		t.Fatal("request over the client burst admitted")
	}
	if rej.Reason != "client_quota" || rej.RetryAfter < time.Second {
		t.Fatalf("quota rejection = %+v", rej)
	}
	// A different client is unaffected.
	if release, _, ok := c.Admit(ctx, Query, "tenant-b"); !ok {
		t.Fatal("unrelated client throttled")
	} else {
		release()
	}
	if st := c.Snapshot(); st.QuotaRejected != 1 || st.QuotaClients != 2 {
		t.Fatalf("quota stats = %+v", st)
	}
}

func TestClientQuotaRefills(t *testing.T) {
	b := &buckets{rate: 1000, burst: 1, m: make(map[string]*bucket)}
	now := time.Now()
	if ok, _ := b.allow("k", now); !ok {
		t.Fatal("fresh bucket rejected")
	}
	if ok, after := b.allow("k", now); ok || after <= 0 {
		t.Fatal("drained bucket admitted")
	}
	if ok, _ := b.allow("k", now.Add(10*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill")
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	release, _, ok := c.Admit(context.Background(), Ingest, "any")
	if !ok {
		t.Fatal("nil controller rejected a request")
	}
	release()
	if st := c.Snapshot(); st != (Stats{}) {
		t.Fatalf("nil controller stats = %+v", st)
	}
}

func TestClientKey(t *testing.T) {
	hdr := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	if k := ClientKey(hdr(map[string]string{"X-Client-ID": "svc-7"}), "10.0.0.1:443"); k != "svc-7" {
		t.Fatalf("header key = %q", k)
	}
	if k := ClientKey(hdr(nil), "10.0.0.1:443"); k != "10.0.0.1" {
		t.Fatalf("addr key = %q", k)
	}
	if k := ClientKey(hdr(nil), "[::1]:8080"); k != "::1" {
		t.Fatalf("v6 addr key = %q", k)
	}
}

func TestUnlimitedGate(t *testing.T) {
	c := New(Options{MaxInFlightIngest: -1, MaxInFlightQuery: -1})
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 100; i++ {
		release, _, ok := c.Admit(ctx, Query, "")
		if !ok {
			t.Fatalf("unlimited gate rejected request %d", i)
		}
		releases = append(releases, release)
	}
	for _, r := range releases {
		r()
	}
	if st := c.Snapshot(); st.Query.Admitted != 100 || st.Query.InFlight != 0 {
		t.Fatalf("stats = %+v", st.Query)
	}
}
