// Package par provides the deterministic fork-join primitive used by the
// build pipeline's hot loops: fixed, contiguous range splits executed on
// up to runtime.NumCPU() goroutines. Work is divided by index range, never
// work-stolen, so each output slot is written by exactly one worker and a
// parallel run produces bit-identical results to a sequential one.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: n > 0 is used as-is, anything
// else means runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For splits [0, n) into at most `workers` contiguous chunks and runs
// body(w, lo, hi) for each, where w is the chunk index (usable to select
// per-worker scratch). It returns when every chunk is done.
//
// With workers ≤ 1, n ≤ grain, or GOMAXPROCS = 1 the body runs inline on
// the caller's goroutine — the sequential fast path. grain is the minimum
// chunk size worth a goroutine; pass 0 for the default of 64.
func For(workers, n, grain int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 64
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + grain - 1) / grain; workers > max {
		workers = max
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: an already-done context
// skips the fan-out entirely, and the body receives ctx so each chunk can
// bail out between items. ForCtx still waits for every launched chunk to
// return — cancellation is a request to stop early, not an abandonment of
// running workers — and returns ctx.Err() when the context was done
// before or during the run.
func ForCtx(ctx context.Context, workers, n, grain int, body func(ctx context.Context, w, lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	For(workers, n, grain, func(w, lo, hi int) {
		body(ctx, w, lo, hi)
	})
	return ctx.Err()
}
