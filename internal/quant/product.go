package quant

import (
	"math"
	"sort"

	"ppqtraj/internal/cluster"
	"ppqtraj/internal/geo"
)

// Product implements the Product Quantization baseline [Jégou et al. 19]
// for 2-D trajectory points: the vector is split into its two scalar
// subspaces (x and y), each quantized against an independent scalar
// codebook; a point's code is the pair of sub-codeword indexes.
//
// It supports the paper's two comparison modes: a fixed codeword budget
// (the budget is split evenly between the subspaces, so a size-V codebook
// stores V scalar centroids in total) and an error-bounded mode where each
// subspace is covered within ε/√2 so the combined deviation stays ≤ ε.
type Product struct {
	XWords, YWords []float64
}

// scalarKMeans clusters 1-D values into v centroids.
func scalarKMeans(vals []float64, v, maxIter int, seed int64) ([]float64, []int) {
	data := make([][]float64, len(vals))
	for i, x := range vals {
		data[i] = []float64{x}
	}
	res := cluster.KMeans(data, v, maxIter, seed)
	cents := make([]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		cents[i] = c[0]
	}
	return cents, res.Assign
}

// scalarCover returns the minimal 1-D codebook covering vals within bound:
// the classic greedy interval cover (sort, place a centroid at min+bound,
// skip everything it covers, repeat), which is optimal in one dimension.
func scalarCover(vals []float64, bound float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	var cents []float64
	i := 0
	for i < len(s) {
		c := s[i] + bound
		cents = append(cents, c)
		for i < len(s) && s[i] <= c+bound {
			i++
		}
	}
	return cents
}

// nearestScalar returns the index of the centroid closest to v. cents need
// not be sorted.
func nearestScalar(cents []float64, v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range cents {
		if d := math.Abs(c - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// ProductFixed trains a product quantizer on points with a total budget of
// v stored centroids (v/2 per subspace, minimum 1 each) and returns the
// quantizer plus each point's (xCode, yCode).
func ProductFixed(points []geo.Point, v, maxIter int, seed int64) (*Product, [][2]int) {
	half := v / 2
	if half < 1 {
		half = 1
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i], ys[i] = p.X, p.Y
	}
	xc, xa := scalarKMeans(xs, half, maxIter, seed)
	yc, ya := scalarKMeans(ys, half, maxIter, seed+1)
	pq := &Product{XWords: xc, YWords: yc}
	codes := make([][2]int, len(points))
	for i := range points {
		codes[i] = [2]int{xa[i], ya[i]}
	}
	return pq, codes
}

// ProductBounded trains a product quantizer whose reconstruction error is
// at most eps for every input point (each axis covered within eps/√2).
func ProductBounded(points []geo.Point, eps float64) (*Product, [][2]int) {
	bound := eps / math.Sqrt2
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i], ys[i] = p.X, p.Y
	}
	pq := &Product{XWords: scalarCover(xs, bound), YWords: scalarCover(ys, bound)}
	codes := make([][2]int, len(points))
	for i, p := range points {
		codes[i] = [2]int{nearestScalar(pq.XWords, p.X), nearestScalar(pq.YWords, p.Y)}
	}
	return pq, codes
}

// Decode reconstructs the point for a code pair.
func (p *Product) Decode(code [2]int) geo.Point {
	return geo.Point{X: p.XWords[code[0]], Y: p.YWords[code[1]]}
}

// NumWords returns the stored centroid count (the codebook size the paper
// compares: Table 6 counts stored codewords).
func (p *Product) NumWords() int { return len(p.XWords) + len(p.YWords) }

// Bytes returns the codebook storage (one float64 per scalar centroid).
func (p *Product) Bytes() int { return p.NumWords() * 8 }
