package quant

import (
	"ppqtraj/internal/geo"
)

// Residual implements the Residual Quantization baseline [Chen et al. 8]:
// a cascade of vector-quantization stages where stage s quantizes the
// residual left by stages 1..s−1. A point's code is one codeword index per
// stage; its reconstruction is the sum of the selected codewords.
type Residual struct {
	Stages []*Codebook
}

// ResidualFixed trains an RQ with a total budget of v stored codewords
// split across two stages (⌈v/2⌉ coarse + ⌊v/2⌋ refinement), matching the
// equal-storage comparisons of Tables 2–4. It returns per-point stage
// codes.
func ResidualFixed(points []geo.Point, v, maxIter int, seed int64) (*Residual, [][]int) {
	v1 := (v + 1) / 2
	v2 := v - v1
	if v2 < 1 {
		v2 = 1
	}
	stage1 := FixedKMeans(points, v1, maxIter, seed)
	resid := make([]geo.Point, len(points))
	for i, p := range points {
		resid[i] = p.Sub(stage1.Book.Word(stage1.Codes[i]))
	}
	stage2 := FixedKMeans(resid, v2, maxIter, seed+1)
	rq := &Residual{Stages: []*Codebook{stage1.Book, stage2.Book}}
	codes := make([][]int, len(points))
	for i := range points {
		codes[i] = []int{stage1.Codes[i], stage2.Codes[i]}
	}
	return rq, codes
}

// ResidualBounded trains an RQ that keeps every point's reconstruction
// within eps by appending stages until the bound holds. Each stage is an
// error-bounded incremental cover of the current residuals with a bound
// that shrinks geometrically, so a few stages suffice; the final stage
// enforces eps exactly.
func ResidualBounded(points []geo.Point, eps float64, maxStages int) (*Residual, [][]int) {
	if maxStages < 1 {
		maxStages = 3
	}
	rq := &Residual{}
	codes := make([][]int, len(points))
	resid := append([]geo.Point(nil), points...)
	// Shrinking per-stage bounds: cover residuals coarsely first, then
	// refine. The last stage uses eps itself which guarantees the bound.
	for s := 0; s < maxStages; s++ {
		bound := eps
		if s < maxStages-1 {
			// Coarse stages: spread the work, e.g. 8×, 2× the final bound.
			shift := uint(2 * (maxStages - 1 - s))
			bound = eps * float64(uint64(1)<<shift)
		}
		inc := NewIncrementalClustered(bound)
		idxs := inc.Quantize(resid)
		rq.Stages = append(rq.Stages, inc.Book)
		for i := range resid {
			codes[i] = append(codes[i], idxs[i])
			resid[i] = resid[i].Sub(inc.Book.Word(idxs[i]))
		}
	}
	return rq, codes
}

// Decode reconstructs a point from its stage codes.
func (r *Residual) Decode(code []int) geo.Point {
	var p geo.Point
	for s, idx := range code {
		p = p.Add(r.Stages[s].Word(idx))
	}
	return p
}

// NumWords returns the total stored codewords across stages.
func (r *Residual) NumWords() int {
	n := 0
	for _, s := range r.Stages {
		n += s.Len()
	}
	return n
}

// Bytes returns the codebook storage across stages.
func (r *Residual) Bytes() int {
	n := 0
	for _, s := range r.Stages {
		n += s.Bytes()
	}
	return n
}
