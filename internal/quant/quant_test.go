package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppqtraj/internal/geo"
)

func randPoints(rng *rand.Rand, n int, scale float64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Pt(rng.Float64()*scale, rng.Float64()*scale)
	}
	return out
}

func TestCodebookAddNearest(t *testing.T) {
	cb := NewCodebook(1)
	if cb.Len() != 0 {
		t.Fatal("new codebook not empty")
	}
	i0 := cb.Add(geo.Pt(0, 0))
	i1 := cb.Add(geo.Pt(10, 10))
	if i0 != 0 || i1 != 1 {
		t.Fatalf("indexes %d %d", i0, i1)
	}
	idx, d := cb.Nearest(geo.Pt(0.1, 0.1))
	if idx != 0 || d > 0.2 {
		t.Fatalf("Nearest = %d %v", idx, d)
	}
	// Far query: grid neighborhood is empty, full scan fallback must work.
	idx, _ = cb.Nearest(geo.Pt(100, 100))
	if idx != 1 {
		t.Fatalf("far Nearest = %d", idx)
	}
}

func TestCodebookNearestWithinRadius(t *testing.T) {
	cb := NewCodebook(0.5)
	cb.Add(geo.Pt(0, 0))
	// A codeword within cellSize must be found by the 3×3 probe.
	if _, d, ok := cb.NearestWithin(geo.Pt(0.4, 0.0)); !ok || d > 0.5 {
		t.Fatalf("NearestWithin missed close codeword: ok=%v d=%v", ok, d)
	}
	if _, _, ok := cb.NearestWithin(geo.Pt(5, 5)); ok {
		t.Fatal("NearestWithin found codeword far outside neighborhood")
	}
}

func TestCodebookNearestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCodebook(1).Nearest(geo.Pt(0, 0))
}

func TestCodebookBytes(t *testing.T) {
	cb := NewCodebook(1)
	cb.Add(geo.Pt(0, 0))
	cb.Add(geo.Pt(1, 1))
	if cb.Bytes() != 32 {
		t.Fatalf("Bytes = %d, want 32", cb.Bytes())
	}
}

func TestIncrementalBoundInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewIncremental(0.05)
	for batch := 0; batch < 10; batch++ {
		errs := randPoints(rng, 500, 1)
		idxs := q.Quantize(errs)
		if !q.CheckBound(errs, idxs) {
			t.Fatalf("batch %d violates the ε bound", batch)
		}
	}
	if q.Assigned != 5000 {
		t.Fatalf("Assigned = %d", q.Assigned)
	}
	if q.Grown == 0 || q.Grown > 5000 {
		t.Fatalf("implausible growth %d", q.Grown)
	}
}

func TestIncrementalReusesCodewords(t *testing.T) {
	q := NewIncremental(0.1)
	a := q.QuantizeOne(geo.Pt(0, 0))
	b := q.QuantizeOne(geo.Pt(0.05, 0)) // within ε of the first codeword
	if a != b {
		t.Fatalf("nearby error should reuse codeword: %d vs %d", a, b)
	}
	c := q.QuantizeOne(geo.Pt(1, 1)) // far: must grow
	if c == a {
		t.Fatal("far error must get a new codeword")
	}
	if q.Book.Len() != 2 {
		t.Fatalf("codebook size %d, want 2", q.Book.Len())
	}
}

func TestIncrementalCodebookSizeScalesWithEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 3000, 1)
	small := NewIncremental(0.01)
	small.Quantize(pts)
	large := NewIncremental(0.1)
	large.Quantize(pts)
	if large.Book.Len() >= small.Book.Len() {
		t.Fatalf("looser bound must need fewer codewords: %d vs %d",
			large.Book.Len(), small.Book.Len())
	}
}

// Property: quantize-reconstruct error never exceeds ε for random inputs.
func TestIncrementalProperty(t *testing.T) {
	f := func(xs []float64) bool {
		q := NewIncremental(0.25)
		for i := 0; i+1 < len(xs); i += 2 {
			x, y := xs[i], xs[i+1]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			// Clamp extreme magnitudes to keep the grid hash finite.
			x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
			p := geo.Pt(x, y)
			idx := q.QuantizeOne(p)
			if p.Dist(q.Book.Word(idx)) > 0.25+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedKMeansBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 400, 10)
	r := FixedKMeans(pts, 32, 20, 4)
	if r.Book.Len() != 32 {
		t.Fatalf("codebook size %d, want 32", r.Book.Len())
	}
	if len(r.Codes) != 400 {
		t.Fatalf("codes %d", len(r.Codes))
	}
	if r.MaxError(pts) <= 0 {
		t.Fatal("max error should be positive for scattered data")
	}
	if r.MeanError(pts) > r.MaxError(pts) {
		t.Fatal("mean must not exceed max")
	}
}

func TestFixedKMeansMoreWordsLessError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 1000, 10)
	coarse := FixedKMeans(pts, 4, 25, 6)
	fine := FixedKMeans(pts, 64, 25, 6)
	if fine.MeanError(pts) >= coarse.MeanError(pts) {
		t.Fatalf("64 words should beat 4: %v vs %v",
			fine.MeanError(pts), coarse.MeanError(pts))
	}
}

func TestScalarCoverOptimality(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 10}
	cents := scalarCover(vals, 0.5) // each centroid covers width 1
	// Values 0..3 need 4/1=4 groups... greedy: c=0.5 covers [0,1]; c=2.5
	// covers [2,3]; c=10.5 covers 10 → 3 centroids.
	if len(cents) != 3 {
		t.Fatalf("cover size %d, want 3 (%v)", len(cents), cents)
	}
	for _, v := range vals {
		best := math.Inf(1)
		for _, c := range cents {
			if d := math.Abs(c - v); d < best {
				best = d
			}
		}
		if best > 0.5+1e-12 {
			t.Fatalf("value %v not covered within bound", v)
		}
	}
	if got := scalarCover(nil, 1); got != nil {
		t.Fatal("empty input")
	}
}

func TestProductBoundedRespectsEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 800, 5)
	eps := 0.2
	pq, codes := ProductBounded(pts, eps)
	for i, p := range pts {
		if d := p.Dist(pq.Decode(codes[i])); d > eps+1e-9 {
			t.Fatalf("point %d error %v > ε %v", i, d, eps)
		}
	}
	if pq.NumWords() == 0 || pq.Bytes() != pq.NumWords()*8 {
		t.Fatal("bad size accounting")
	}
}

func TestProductFixedBudgetSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 300, 5)
	pq, codes := ProductFixed(pts, 32, 20, 9)
	if len(pq.XWords) != 16 || len(pq.YWords) != 16 {
		t.Fatalf("budget split %d/%d, want 16/16", len(pq.XWords), len(pq.YWords))
	}
	if pq.NumWords() != 32 {
		t.Fatalf("NumWords = %d", pq.NumWords())
	}
	for i, p := range pts {
		rec := pq.Decode(codes[i])
		if !rec.IsFinite() {
			t.Fatal("non-finite reconstruction")
		}
		_ = p
	}
}

func TestProductWorseThanVQOnCorrelatedData(t *testing.T) {
	// On diagonal (correlated) data the axis-independent PQ wastes its
	// budget — this is exactly why the paper's joint quantizer wins.
	rng := rand.New(rand.NewSource(10))
	pts := make([]geo.Point, 500)
	for i := range pts {
		v := rng.Float64() * 10
		pts[i] = geo.Pt(v, v+rng.NormFloat64()*0.01)
	}
	vq := FixedKMeans(pts, 16, 25, 11)
	pq, codes := ProductFixed(pts, 16, 25, 11)
	var pqErr float64
	for i, p := range pts {
		pqErr += p.Dist(pq.Decode(codes[i]))
	}
	pqErr /= float64(len(pts))
	if vq.MeanError(pts) >= pqErr {
		t.Fatalf("VQ should beat PQ on correlated data: %v vs %v", vq.MeanError(pts), pqErr)
	}
}

func TestResidualFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randPoints(rng, 500, 10)
	rq, codes := ResidualFixed(pts, 32, 20, 13)
	if rq.NumWords() != 32 {
		t.Fatalf("NumWords = %d, want 32", rq.NumWords())
	}
	if len(rq.Stages) != 2 {
		t.Fatalf("stages = %d", len(rq.Stages))
	}
	var mean float64
	for i, p := range pts {
		mean += p.Dist(rq.Decode(codes[i]))
	}
	mean /= float64(len(pts))
	// Two-stage RQ must beat single-stage VQ with the same total budget on
	// spread data... at minimum it must reconstruct sanely.
	if mean > 3 {
		t.Fatalf("RQ mean error %v implausibly large", mean)
	}
}

func TestResidualBoundedRespectsEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 600, 8)
	eps := 0.15
	rq, codes := ResidualBounded(pts, eps, 3)
	for i, p := range pts {
		if d := p.Dist(rq.Decode(codes[i])); d > eps+1e-9 {
			t.Fatalf("point %d error %v > ε", i, d)
		}
	}
	if len(rq.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rq.Stages))
	}
}

func TestResidualRefinementImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randPoints(rng, 500, 10)
	rq, codes := ResidualFixed(pts, 32, 20, 16)
	var oneStage, twoStage float64
	for i, p := range pts {
		oneStage += p.Dist(rq.Stages[0].Word(codes[i][0]))
		twoStage += p.Dist(rq.Decode(codes[i]))
	}
	if twoStage >= oneStage {
		t.Fatalf("refinement stage should reduce error: %v vs %v", twoStage, oneStage)
	}
}

func BenchmarkIncrementalQuantize(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	pts := randPoints(rng, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewIncremental(0.02)
		q.Quantize(pts)
	}
}
