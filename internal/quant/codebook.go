// Package quant implements the vector quantizers of the paper: the
// incremental error-bounded quantizer at the heart of E-PQ/PPQ
// (Equation 3: the minimal codebook C such that every error is within ε₁
// of its codeword), fixed-budget k-means quantizers for the equal-codeword
// comparisons of Tables 2–4, and the Product Quantization [19] and
// Residual Quantization [8] baselines.
package quant

import (
	"math"

	"ppqtraj/internal/cluster"
	"ppqtraj/internal/geo"
)

// Codebook is an ordered set of 2-D codewords with a uniform-grid hash for
// fast nearest-codeword lookups. The grid cell size equals the error bound
// ε so that any codeword within ε of a query lies in the 3×3 cell
// neighborhood of the query's cell. The hash is neighborhood-materialized:
// Add registers a codeword in the lists of all nine cells around it, so a
// lookup probes exactly one map entry instead of nine. The trade is 9×
// index duplication (4 bytes each) against a 9× cheaper hot-path probe —
// codebooks top out in the thousands of words, the probe runs per point.
type Codebook struct {
	Words    []geo.Point
	cellSize float64
	near     map[uint64][]int32
}

// NewCodebook creates an empty codebook whose spatial hash is tuned for
// radius-bound queries of the given cell size (typically ε₁).
func NewCodebook(cellSize float64) *Codebook {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Codebook{cellSize: cellSize, near: make(map[uint64][]int32)}
}

// Len returns the number of codewords.
func (c *Codebook) Len() int { return len(c.Words) }

// Bytes returns the storage footprint of the codebook: two float64 per
// codeword, as the paper's size accounting counts it (Table 6/Figure 9).
func (c *Codebook) Bytes() int { return len(c.Words) * 16 }

func cellKey(x, y int32) uint64 {
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

func (c *Codebook) cellOf(p geo.Point) (int32, int32) {
	return int32(math.Floor(p.X / c.cellSize)), int32(math.Floor(p.Y / c.cellSize))
}

// Add appends a codeword and returns its index.
func (c *Codebook) Add(p geo.Point) int {
	idx := len(c.Words)
	c.Words = append(c.Words, p)
	cx, cy := c.cellOf(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			k := cellKey(cx+dx, cy+dy)
			c.near[k] = append(c.near[k], int32(idx))
		}
	}
	return idx
}

// Word returns the codeword at index i.
func (c *Codebook) Word(i int) geo.Point { return c.Words[i] }

// NearestWithin returns the index and distance of the nearest codeword to
// p restricted to the 3×3 grid neighborhood; found is false when no
// codeword lies there. Codewords within cellSize of p are always found.
func (c *Codebook) NearestWithin(p geo.Point) (idx int, dist float64, found bool) {
	cx, cy := c.cellOf(p)
	cand := c.near[cellKey(cx, cy)]
	if len(cand) == 0 {
		return 0, 0, false
	}
	best, bestD2 := -1, math.Inf(1)
	for _, wi := range cand {
		if d := p.Dist2(c.Words[wi]); d < bestD2 {
			best, bestD2 = int(wi), d
		}
	}
	return best, math.Sqrt(bestD2), true
}

// Nearest returns the nearest codeword index and its distance, scanning
// the whole codebook when the grid neighborhood is empty. It panics on an
// empty codebook.
func (c *Codebook) Nearest(p geo.Point) (int, float64) {
	if len(c.Words) == 0 {
		panic("quant: Nearest on empty codebook")
	}
	if idx, d, ok := c.NearestWithin(p); ok {
		return idx, d
	}
	best, bestD := 0, math.Inf(1)
	for i, w := range c.Words {
		if d := p.Dist(w); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Incremental is the error-bounded incremental quantizer of Equation 3.
// Quantize assigns each error vector to a codeword within Epsilon, growing
// the codebook over the unsatisfied errors in one of two ways:
//
//   - greedy (default): a single-pass disk cover — each uncovered error
//     becomes a codeword. Fast and online, at the cost of a somewhat
//     larger codebook.
//   - clustering (ClusterUnsatisfied): the paper's vector-quantizer path —
//     the batch of unsatisfied errors is clustered with the bounded-radius
//     k-means loop (Lemma 1) and the centroids join the codebook. Smaller
//     codebooks (closer to Equation 3's minimal-|C| objective), and the
//     running time scales with the error range — which is exactly the
//     build-time asymmetry Table 5 measures (narrow prediction errors
//     converge in few rounds; wide raw-position ranges need many).
type Incremental struct {
	Epsilon float64
	Book    *Codebook
	// ClusterUnsatisfied selects the clustering growth path for batch
	// Quantize calls.
	ClusterUnsatisfied bool
	// Stats
	Grown      int // codewords added because of bound violations
	Assigned   int // total vectors quantized
	Iterations int // clustering/probe work count (the "work" measure)
}

// NewIncremental creates an incremental quantizer with bound ε (greedy
// growth).
func NewIncremental(eps float64) *Incremental {
	return &Incremental{Epsilon: eps, Book: NewCodebook(eps)}
}

// NewIncrementalClustered creates an incremental quantizer with bound ε
// that grows by bounded clustering (the paper's quantization path).
func NewIncrementalClustered(eps float64) *Incremental {
	return &Incremental{Epsilon: eps, Book: NewCodebook(eps), ClusterUnsatisfied: true}
}

// QuantizeOne assigns a single error vector, growing the codebook when no
// existing codeword is within Epsilon. It returns the codeword index.
func (q *Incremental) QuantizeOne(e geo.Point) int {
	q.Assigned++
	q.Iterations++
	if idx, d, ok := q.Book.NearestWithin(e); ok && d <= q.Epsilon {
		return idx
	}
	q.Grown++
	return q.Book.Add(e)
}

// Quantize assigns a batch of error vectors (one timestamp's worth in
// Algorithm 1 line 6) and returns their codeword indexes.
func (q *Incremental) Quantize(errs []geo.Point) []int {
	return q.QuantizeInto(make([]int, len(errs)), errs)
}

// QuantizeInto is Quantize writing into a caller-owned slice (len(out)
// must equal len(errs)) so steady-state builds don't allocate per batch.
// It returns out.
func (q *Incremental) QuantizeInto(out []int, errs []geo.Point) []int {
	if !q.ClusterUnsatisfied {
		for i, e := range errs {
			out[i] = q.QuantizeOne(e)
		}
		return out
	}
	var unsat []int
	for i, e := range errs {
		q.Assigned++
		q.Iterations++
		if idx, d, ok := q.Book.NearestWithin(e); ok && d <= q.Epsilon {
			out[i] = idx
		} else {
			out[i] = -1
			unsat = append(unsat, i)
		}
	}
	if len(unsat) == 0 {
		return out
	}
	// Cluster the unsatisfied batch with the bounded-radius loop and add
	// the centroids as new codewords. Step scales with the batch so the
	// Lemma 1 loop does not degenerate to one-at-a-time growth on wide
	// ranges.
	data := make([][]float64, len(unsat))
	for i, idx := range unsat {
		data[i] = []float64{errs[idx].X, errs[idx].Y}
	}
	step := len(unsat) / 64
	if step < 1 {
		step = 1
	}
	res, stats := cluster.BoundedPartition(data, cluster.BoundedOptions{
		Epsilon: q.Epsilon,
		Step:    step,
		MaxIter: 15,
		Seed:    int64(q.Grown),
	})
	q.Iterations += stats.Iterations * len(unsat)
	base := make([]int, res.K())
	for c, cent := range res.Centroids {
		base[c] = q.Book.Add(geo.Point{X: cent[0], Y: cent[1]})
		q.Grown++
	}
	for i, idx := range unsat {
		out[idx] = base[res.Assign[i]]
		// The centroid is within ε of every member by the bounded loop;
		// guard against numerically marginal cases by falling back to the
		// member itself.
		if errs[idx].Dist(q.Book.Word(out[idx])) > q.Epsilon {
			q.Grown++
			out[idx] = q.Book.Add(errs[idx])
		}
	}
	return out
}

// CheckBound verifies the Definition 3.2 invariant for a batch: every
// error is within Epsilon of its assigned codeword.
func (q *Incremental) CheckBound(errs []geo.Point, idxs []int) bool {
	for i, e := range errs {
		if e.Dist(q.Book.Word(idxs[i])) > q.Epsilon+1e-12 {
			return false
		}
	}
	return true
}

// FixedResult is a fixed-budget quantization of one batch of vectors.
type FixedResult struct {
	Book  *Codebook
	Codes []int
}

// FixedKMeans quantizes points into exactly v codewords with k-means —
// the equal-codeword-budget mode used in Tables 2–4 ("we learn C
// independently for every timestamp guaranteeing the same number of
// codewords is given ... across all methods").
func FixedKMeans(points []geo.Point, v, maxIter int, seed int64) *FixedResult {
	data := make([][]float64, len(points))
	for i, p := range points {
		data[i] = []float64{p.X, p.Y}
	}
	res := cluster.KMeans(data, v, maxIter, seed)
	book := NewCodebook(1)
	for _, c := range res.Centroids {
		book.Add(geo.Point{X: c[0], Y: c[1]})
	}
	return &FixedResult{Book: book, Codes: res.Assign}
}

// MaxError returns the maximum distance between each point and its
// assigned codeword.
func (r *FixedResult) MaxError(points []geo.Point) float64 {
	max := 0.0
	for i, p := range points {
		if d := p.Dist(r.Book.Word(r.Codes[i])); d > max {
			max = d
		}
	}
	return max
}

// MeanError returns the mean distance between each point and its assigned
// codeword (the per-batch MAE contribution).
func (r *FixedResult) MeanError(points []geo.Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for i, p := range points {
		s += p.Dist(r.Book.Word(r.Codes[i]))
	}
	return s / float64(len(points))
}
