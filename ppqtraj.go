// Package ppqtraj is a Go implementation of PPQ-Trajectory
// (Wang & Ferhatosmanoglu, PVLDB 14(2), 2020): spatio-temporal
// quantization for querying large, dynamic trajectory repositories.
//
// The library ingests trajectory streams one timestamp at a time and
// maintains an error-bounded, queryable summary:
//
//   - a partition-wise predictive quantizer (PPQ) groups trajectories by
//     spatial proximity or motion autocorrelation, predicts each point
//     from its k previous reconstructions, and quantizes the prediction
//     errors against an incrementally grown codebook where every error is
//     within ε₁ of its codeword;
//   - coordinate quadtree coding (CQC) stores a few extra bits per point
//     that tighten the reconstruction error to (√2/2)·g_s;
//   - a temporal partition-based index (TPI) organizes the reconstructed
//     points into time periods of reusable spatial indexes, answering
//     spatio-temporal range queries (STRQ) and trajectory path queries
//     (TPQ) directly over the summary, with recall 1 and — in exact
//     mode — precision 1.
//
// # Quick start
//
//	data := ppqtraj.SyntheticPorto(200, 42)        // or build your own Dataset
//	sum := ppqtraj.BuildSummary(data, ppqtraj.DefaultConfig())
//	eng, _ := ppqtraj.NewEngine(sum, ppqtraj.DefaultIndexConfig(), data)
//	res := eng.RangeQuery(ppqtraj.Pt(-8.61, 41.15), 10)
//
// See the examples/ directory for complete programs.
package ppqtraj

import (
	"context"
	"fmt"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// Point is a planar position; for geographic data X is longitude and Y is
// latitude.
type Point = geo.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Rect is an axis-aligned rectangle (min-closed, max-open).
type Rect = geo.Rect

// ID identifies a trajectory within a Dataset.
type ID = traj.ID

// Trajectory is a sequence of positions at consecutive ticks starting at
// Start.
type Trajectory = traj.Trajectory

// Dataset is an immutable trajectory collection with per-timestamp access.
type Dataset = traj.Dataset

// NewDataset builds a dataset from trajectories, assigning IDs in input
// order.
func NewDataset(trajs []*Trajectory) *Dataset { return traj.NewDataset(trajs) }

// MetersToDegrees converts ground meters to coordinate degrees with the
// paper's flat 111 km/° conversion; DegreesToMeters is its inverse.
func MetersToDegrees(m float64) float64 { return geo.MetersToDegrees(m) }

// DegreesToMeters converts coordinate degrees to ground meters.
func DegreesToMeters(d float64) float64 { return geo.DegreesToMeters(d) }

// PartitionMode selects how PPQ groups trajectories for shared prediction
// models.
type PartitionMode int

const (
	// Spatial groups by position (PPQ-S, Equation 7).
	Spatial PartitionMode = iota
	// Autocorr groups by lag-k autocorrelation similarity (PPQ-A,
	// Equation 8).
	Autocorr
	// NoPartition uses one global prediction model (E-PQ).
	NoPartition
)

func (m PartitionMode) internal() partition.Mode {
	switch m {
	case Autocorr:
		return partition.Autocorr
	case NoPartition:
		return partition.None
	default:
		return partition.Spatial
	}
}

// Config controls summary construction. Zero fields take the paper's
// defaults (§6.1); DefaultConfig spells them out.
type Config struct {
	// Lags is the AR order k of the prediction model (default 3).
	Lags int
	// EpsilonMeters is ε₁^M, the codebook error bound in meters
	// (default 111 m ≈ 0.001°).
	EpsilonMeters float64
	// Mode selects the partitioning similarity (default Spatial).
	Mode PartitionMode
	// PartitionThreshold is ε_p in coordinate units for Spatial mode or in
	// AR-coefficient units for Autocorr (defaults 0.1 and 0.01).
	PartitionThreshold float64
	// DisableCQC turns off coordinate quadtree coding (the paper's
	// "-basic" variants).
	DisableCQC bool
	// CQCCellMeters is g_s, the CQC grid cell size in meters (default 50).
	CQCCellMeters float64
	// Seed makes the build deterministic.
	Seed int64
}

// DefaultConfig returns the paper's default parameters: k = 3,
// ε₁ ≈ 111 m, spatial partitioning with ε_p = 0.1, CQC with g_s = 50 m.
func DefaultConfig() Config {
	return Config{
		Lags:               3,
		EpsilonMeters:      111,
		Mode:               Spatial,
		PartitionThreshold: 0.1,
		CQCCellMeters:      50,
	}
}

func (c Config) internal() core.Options {
	if c.Lags == 0 {
		c.Lags = 3
	}
	if c.EpsilonMeters == 0 {
		c.EpsilonMeters = 111
	}
	if c.PartitionThreshold == 0 {
		if c.Mode == Autocorr {
			// Calibrated for this library's differenced Yule-Walker
			// features, whose dispersion is ≈20× the paper's coefficient
			// scale (see DESIGN.md §2): 0.2 here corresponds to the
			// paper's ε_p = 0.01.
			c.PartitionThreshold = 0.2
		} else {
			c.PartitionThreshold = 0.1
		}
	}
	if c.CQCCellMeters == 0 {
		c.CQCCellMeters = 50
	}
	return core.Options{
		K:        c.Lags,
		Epsilon1: geo.MetersToDegrees(c.EpsilonMeters),
		EpsilonP: c.PartitionThreshold,
		Mode:     c.Mode.internal(),
		UseCQC:   !c.DisableCQC,
		GS:       geo.MetersToDegrees(c.CQCCellMeters),
		Seed:     c.Seed,
	}
}

// Summary is the compressed, queryable representation of a dataset.
type Summary struct {
	s *core.Summary
}

// BuildSummary runs the full stream of d through the PPQ builder.
func BuildSummary(d *Dataset, cfg Config) *Summary {
	return &Summary{s: core.Build(d, cfg.internal())}
}

// StreamBuilder ingests columns of live trajectory positions one
// timestamp at a time — the online entry point for dynamic data.
type StreamBuilder struct {
	b *core.Builder
}

// NewStreamBuilder creates an online builder.
func NewStreamBuilder(cfg Config) *StreamBuilder {
	return &StreamBuilder{b: core.NewBuilder(cfg.internal())}
}

// Append ingests the positions of the given trajectories at a tick.
// Ticks must be strictly increasing across calls.
func (sb *StreamBuilder) Append(tick int, ids []ID, positions []Point) error {
	if len(ids) != len(positions) {
		return fmt.Errorf("ppqtraj: %d ids but %d positions", len(ids), len(positions))
	}
	sb.b.Append(&traj.Column{Tick: tick, IDs: ids, Points: positions})
	return nil
}

// Summary returns the live summary (not a copy; further Appends extend
// it).
func (sb *StreamBuilder) Summary() *Summary { return &Summary{s: sb.b.Summary()} }

// MAEMeters is the mean reconstruction deviation in meters.
func (s *Summary) MAEMeters() float64 { return s.s.MAEMeters() }

// MaxDeviationMeters is the worst-case reconstruction deviation in
// meters — (√2/2)·g_s with CQC, ε₁ without.
func (s *Summary) MaxDeviationMeters() float64 {
	return geo.DegreesToMeters(s.s.MaxDeviation())
}

// SizeBytes is the summary's storage footprint.
func (s *Summary) SizeBytes() int { return s.s.SizeBytes() }

// NumCodewords is the codebook size |C|.
func (s *Summary) NumCodewords() int { return s.s.NumCodewords() }

// NumPoints is the number of summarized samples.
func (s *Summary) NumPoints() int { return s.s.NumPoints }

// CompressionRatio is rawBytes / SizeBytes for the given raw size
// (use Dataset.RawBytes()).
func (s *Summary) CompressionRatio(rawBytes int) float64 {
	return s.s.CompressionRatio(rawBytes)
}

// Reconstruct returns the reconstruction of trajectory id at a tick.
func (s *Summary) Reconstruct(id ID, tick int) (Point, bool) {
	return s.s.ReconstructedPoint(id, tick)
}

// ReconstructPath returns the reconstructions for ticks [from, from+l),
// clipped to the trajectory's range.
func (s *Summary) ReconstructPath(id ID, from, l int) []Point {
	return s.s.ReconstructPath(id, from, l)
}

// IndexConfig controls the temporal partition-based index.
type IndexConfig struct {
	// CellMeters is g_c, the query grid cell size in meters (default 100).
	CellMeters float64
	// PartitionThreshold is ε_s for the index's spatial partitioning
	// (default 0.1).
	PartitionThreshold float64
	// DropRate is ε_c, the per-region density dropping-rate threshold
	// (default 0.5).
	DropRate float64
	// RebuildThreshold is ε_d, the ADR threshold that forces an index
	// re-build (default 0.5).
	RebuildThreshold float64
	// Seed makes index construction deterministic.
	Seed int64
}

// DefaultIndexConfig returns the paper's defaults: g_c = 100 m,
// ε_s = 0.1, ε_c = ε_d = 0.5.
func DefaultIndexConfig() IndexConfig {
	return IndexConfig{CellMeters: 100, PartitionThreshold: 0.1, DropRate: 0.5, RebuildThreshold: 0.5}
}

func (c IndexConfig) internal() index.Options {
	if c.CellMeters == 0 {
		c.CellMeters = 100
	}
	if c.PartitionThreshold == 0 {
		c.PartitionThreshold = 0.1
	}
	if c.DropRate == 0 {
		c.DropRate = 0.5
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 0.5
	}
	return index.Options{
		EpsS: c.PartitionThreshold,
		GC:   geo.MetersToDegrees(c.CellMeters),
		EpsC: c.DropRate,
		EpsD: c.RebuildThreshold,
		Seed: c.Seed,
	}
}

// Engine answers spatio-temporal queries over a summary.
type Engine struct {
	e *query.Engine
}

// NewEngine indexes the summary's reconstructions into a TPI. raw may be
// nil; it is needed only for ExactRangeQuery.
func NewEngine(s *Summary, cfg IndexConfig, raw *Dataset) (*Engine, error) {
	e, err := query.BuildEngine(s.s, cfg.internal(), raw)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// RangeResult is a spatio-temporal range query answer.
type RangeResult struct {
	// IDs are the matching trajectories.
	IDs []ID
	// Cell is the grid cell the query point mapped to.
	Cell Rect
	// Covered is false when the query point is outside the indexed space.
	Covered bool
	// Visited counts raw-trajectory accesses (exact mode only).
	Visited int
}

// RangeQuery answers STRQ approximately: which trajectories were in the
// grid cell of p at the given tick. Recall is 1 (the local-search
// guarantee); precision can be < 1.
func (e *Engine) RangeQuery(p Point, tick int) *RangeResult {
	r, _ := e.e.STRQ(context.Background(), p, tick, false, nil) // approximate mode never errors
	return &RangeResult{IDs: r.IDs, Cell: r.Cell, Covered: r.Covered}
}

// ExactRangeQuery answers STRQ exactly (precision and recall 1) by
// verifying candidates against the raw dataset; Visited reports the
// verification accesses. It errors when the engine was built without raw
// dataset access.
func (e *Engine) ExactRangeQuery(p Point, tick int) (*RangeResult, error) {
	r, err := e.e.STRQ(context.Background(), p, tick, true, nil)
	if err != nil {
		return nil, err
	}
	return &RangeResult{IDs: r.IDs, Cell: r.Cell, Covered: r.Covered, Visited: r.Visited}, nil
}

// PathResult is a trajectory path query answer: the next-l reconstructions
// of every range match.
type PathResult struct {
	Range *RangeResult
	Paths map[ID][]Point
}

// PathQuery answers TPQ: run RangeQuery at (p, tick) and reproduce each
// match's positions over [tick, tick+l) from the summary.
func (e *Engine) PathQuery(p Point, tick, l int) *PathResult {
	r, _ := e.e.TPQ(context.Background(), p, tick, l, false, nil) // approximate mode never errors
	return &PathResult{
		Range: &RangeResult{IDs: r.STRQ.IDs, Cell: r.STRQ.Cell, Covered: r.STRQ.Covered},
		Paths: r.Paths,
	}
}

// SyntheticPorto generates a Porto-like taxi dataset with n trajectories
// (deterministic in seed) — useful for demos and benchmarks when the real
// archive is unavailable.
func SyntheticPorto(n int, seed int64) *Dataset {
	return gen.Porto(gen.Config{NumTrajectories: n, MinLen: 30, MaxLen: 200, Seed: seed})
}

// SyntheticGeoLife generates a GeoLife-like dataset: few, very long
// trajectories spanning a wide region.
func SyntheticGeoLife(n int, seed int64) *Dataset {
	return gen.GeoLife(gen.Config{NumTrajectories: n, MinLen: 300, MaxLen: 3000, Seed: seed})
}
