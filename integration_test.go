package ppqtraj

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

// TestEndToEndDeterminism: identical seeds produce byte-identical
// summaries and identical query answers.
func TestEndToEndDeterminism(t *testing.T) {
	build := func() (*Summary, *Dataset) {
		d := SyntheticPorto(40, 123)
		return BuildSummary(d, DefaultConfig()), d
	}
	s1, d1 := build()
	s2, _ := build()
	if s1.SizeBytes() != s2.SizeBytes() || s1.MAEMeters() != s2.MAEMeters() ||
		s1.NumCodewords() != s2.NumCodewords() {
		t.Fatal("same seed must give identical summaries")
	}
	for id := ID(0); id < ID(d1.Len()); id++ {
		p1 := s1.ReconstructPath(id, 0, 1000)
		p2 := s2.ReconstructPath(id, 0, 1000)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatal("reconstructions diverge across identical builds")
			}
		}
	}
}

// TestCSVRoundTripThroughPipeline: a dataset survives CSV export/import
// and produces the same summary.
func TestCSVRoundTripThroughPipeline(t *testing.T) {
	d := SyntheticPorto(15, 9)
	var buf bytes.Buffer
	if err := traj.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := traj.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s1 := BuildSummary(d, DefaultConfig())
	s2 := BuildSummary(d2, DefaultConfig())
	if s1.MAEMeters() != s2.MAEMeters() || s1.SizeBytes() != s2.SizeBytes() {
		t.Fatal("CSV round trip changed the build")
	}
}

// TestRecallOracleAcrossModes: the error-bounded engine keeps the
// recall-1 guarantee in all three partitioning modes.
func TestRecallOracleAcrossModes(t *testing.T) {
	d := gen.Porto(gen.Config{NumTrajectories: 30, MinLen: 40, MaxLen: 60, Seed: 4})
	for _, mode := range []partition.Mode{partition.Spatial, partition.Autocorr, partition.None} {
		opts := core.DefaultOptions(mode, 0.1)
		if mode == partition.Autocorr {
			opts.EpsilonP = 0.2
		}
		sum := core.Build(d, opts)
		eng, err := query.BuildEngine(sum, index.Options{
			EpsS: 0.1, GC: geo.MetersToDegrees(100), EpsC: 0.5, EpsD: 0.5, Seed: 5,
		}, d)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		checked := 0
		for q := 0; q < 150 && checked < 80; q++ {
			tr := d.Get(traj.ID(rng.Intn(d.Len())))
			tick := tr.Start + rng.Intn(tr.Len())
			qp, _ := tr.At(tick)
			res, _ := eng.STRQ(context.Background(), qp, tick, false, nil)
			if !res.Covered {
				continue
			}
			checked++
			want := query.GroundTruth(d, res.Cell, tick)
			_, recall := query.PrecisionRecall(res.IDs, want)
			if recall < 1 {
				t.Fatalf("mode %v: recall %v < 1", mode, recall)
			}
		}
		if checked == 0 {
			t.Fatalf("mode %v: no covered queries", mode)
		}
	}
}

// TestNonFinitePositionRejected: corrupt input fails loudly, not
// silently.
func TestNonFinitePositionRejected(t *testing.T) {
	sb := NewStreamBuilder(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN position")
		}
	}()
	_ = sb.Append(0, []ID{0}, []Point{Pt(math.NaN(), 1)})
}

// TestSummaryDeviationBoundProperty: for random small streams, every
// reconstruction respects the Lemma 3 bound — the core end-to-end
// invariant, fuzzed.
func TestSummaryDeviationBoundProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		trajs := int(n%16) + 3
		d := gen.Porto(gen.Config{NumTrajectories: trajs, MinLen: 10, MaxLen: 25, Seed: seed})
		sum := BuildSummary(d, DefaultConfig())
		bound := MetersToDegrees(sum.MaxDeviationMeters()) + 1e-12
		for _, tr := range d.All() {
			for i, p := range tr.Points {
				rp, ok := sum.Reconstruct(tr.ID, tr.Start+i)
				if !ok || p.Dist(rp) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEquivalentToBatch: feeding columns one at a time through the
// stream builder produces the identical summary to the batch Build.
func TestStreamEquivalentToBatch(t *testing.T) {
	d := SyntheticPorto(20, 77)
	batch := BuildSummary(d, DefaultConfig())
	sb := NewStreamBuilder(DefaultConfig())
	for tick := 0; tick < d.MaxTick(); tick++ {
		var ids []ID
		var pos []Point
		for _, tr := range d.All() {
			if p, ok := tr.At(tick); ok {
				ids = append(ids, tr.ID)
				pos = append(pos, p)
			}
		}
		if len(ids) == 0 {
			continue
		}
		if err := sb.Append(tick, ids, pos); err != nil {
			t.Fatal(err)
		}
	}
	stream := sb.Summary()
	if batch.MAEMeters() != stream.MAEMeters() || batch.SizeBytes() != stream.SizeBytes() {
		t.Fatalf("stream and batch builds diverge: %v/%v vs %v/%v",
			batch.MAEMeters(), batch.SizeBytes(), stream.MAEMeters(), stream.SizeBytes())
	}
}

// TestPathQueryMatchesReconstruct: TPQ paths are exactly the summary's
// reconstructions over the window.
func TestPathQueryMatchesReconstruct(t *testing.T) {
	d := SyntheticPorto(25, 88)
	sum := BuildSummary(d, DefaultConfig())
	eng, err := NewEngine(sum, DefaultIndexConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Get(5)
	tick := tr.Start + 10
	qp, _ := tr.At(tick)
	res := eng.PathQuery(qp, tick, 8)
	for id, path := range res.Paths {
		want := sum.ReconstructPath(id, tick, 8)
		if len(path) != len(want) {
			t.Fatal("path length mismatch")
		}
		for i := range path {
			if path[i] != want[i] {
				t.Fatal("TPQ path differs from direct reconstruction")
			}
		}
	}
}
