// Command ppqvet is the repository's invariant checker: it runs the
// standard `go vet` passes and then the project-specific analyzers from
// internal/analysis — durableswap, lockorder, atomichygiene, ctxcancel,
// and metricname — over the requested packages. CI runs it as a hard
// gate; run it locally with
//
//	go run ./cmd/ppqvet ./...
//
// Exit status is 0 when every pass is clean, 1 when any vet pass or
// analyzer reports a finding, 2 on operational failure (a package that
// does not type-check, a broken go toolchain, ...).
//
// Findings can be waived — sparingly, with a reason — by a
// "//ppqvet:allow <analyzer> <justification>" comment on the finding's
// line, the line above it, or the enclosing function's doc comment; a
// waiver without a justification does not suppress anything.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"ppqtraj/internal/analysis"
	"ppqtraj/internal/analysis/atomichygiene"
	"ppqtraj/internal/analysis/ctxcancel"
	"ppqtraj/internal/analysis/durableswap"
	"ppqtraj/internal/analysis/lockorder"
	"ppqtraj/internal/analysis/metricname"
)

// analyzers is the full suite, in the order findings are reported.
var analyzers = []*analysis.Analyzer{
	durableswap.Analyzer,
	lockorder.Analyzer,
	atomichygiene.Analyzer,
	ctxcancel.Analyzer,
	metricname.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the standard `go vet` passes and run only the project analyzers")
	list := flag.Bool("list", false, "list the project analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ppqvet [-novet] [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs go vet plus the project invariant analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "ppqvet: running go vet: %v\n", err)
				os.Exit(2)
			}
			failed = true
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppqvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppqvet: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ppqvet: %s: %v\n", pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ppqvet: %d finding(s)\n", findings)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
