// Command ppqserve runs the sharded trajectory repository server: live
// HTTP ingestion into a raw hot tail made durable by a write-ahead log,
// background compaction into sealed quantized segments (persisted under
// -dir with a crash-safe manifest), and batch STRQ/TPQ/window queries
// over the whole store. On restart the WAL is replayed above the sealed
// watermark, so with -fsync=always a crash at any instant loses zero
// acknowledged ingests.
//
// Usage:
//
//	ppqserve -addr :8080 -dir ./data              # persistent repository
//	ppqserve -addr :8080 -dir ./data -fsync=always # every ack fsynced
//	ppqserve -addr :8080 -preload 500             # memory-only, synthetic warm-up data
//	ppqserve -addr :8081 -dir ./replica -replicate-from http://localhost:8080
//	                                              # read-only follower streaming the primary's WAL
//
// See the README's "Repository server" section for the endpoint
// reference.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppqtraj/internal/admit"
	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/obs"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/traj"
	"ppqtraj/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "persistence directory (empty = memory only)")
	hotTicks := flag.Int("hot", 64, "hot-tail tick span that triggers compaction")
	keepHot := flag.Int("keep-hot", 0, "ticks left hot per compaction (0 = hot/4)")
	interval := flag.Duration("compact-interval", time.Second, "compactor idle wake-up period")
	eps1 := flag.Float64("eps1", 0.001, "codebook error bound ε₁ (degrees)")
	gcMeters := flag.Float64("gc", 100, "query/index grid cell g_c (meters)")
	epsP := flag.Float64("epsp", 0.1, "partition radius ε_p")
	preload := flag.Int("preload", 0, "ingest this many synthetic Porto trajectories at startup")
	seed := flag.Int64("seed", 42, "synthetic preload seed")
	cacheMB := flag.Int64("cache-mb", 64, "decoded-cell cache budget in MiB (0 disables)")
	fsync := flag.String("fsync", "interval",
		"WAL sync policy: always (no acknowledged ingest is ever lost), interval (background fsync), never (OS decides)")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period under -fsync=interval")
	walDir := flag.String("wal-dir", "", "write-ahead log directory (default <dir>/wal; ignored without -dir)")
	walSegMB := flag.Int64("wal-segment-mb", 16, "WAL file size before rotation, in MiB")
	walRetain := flag.Int("wal-retain-segments", 0,
		"sealed WAL segment files kept beyond the compaction watermark, a catch-up cushion for followers that connect late (0 = none)")
	replicateFrom := flag.String("replicate-from", "",
		"primary base URL to follow (e.g. http://primary:8080); makes this process a read-only replica (requires -dir)")
	maxLagTicks := flag.Int("max-replica-lag-ticks", 0,
		"replica staleness bound: /readyz reports 503 while this follower trails the primary's applied tick by more than this (0 = default 64)")
	replBackoff := flag.Duration("repl-backoff", 0,
		"initial reconnect backoff after a replication stream failure, doubling to 50x with jitter (0 = default 100ms)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second,
		"default per-request query deadline (0 = none; clients override with ?timeout=)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"graceful-shutdown drain window for in-flight requests")
	groupWait := flag.Duration("group-commit-wait", 2*time.Millisecond,
		"WAL group-commit batching window under -fsync=always (lone writers never wait; 0 disables)")
	maxIngest := flag.Int("max-inflight-ingest", 0,
		"concurrent ingest-class requests admitted (0 = default 64, negative = unlimited)")
	maxQuery := flag.Int("max-inflight-query", 0,
		"concurrent query-class requests admitted (0 = default 256, negative = unlimited)")
	admitQueue := flag.Int("admit-queue", 0,
		"requests allowed to wait for an in-flight slot per class (0 = 4x the cap, negative = shed instantly)")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond,
		"longest one request waits for an in-flight slot before a 429")
	clientRate := flag.Float64("client-rate", 0,
		"per-client request budget in req/s, keyed X-Client-ID or remote host (0 = no quotas)")
	clientBurst := flag.Int("client-burst", 0, "per-client token-bucket depth (0 = 4x -client-rate)")
	slowQueryMS := flag.Int("slow-query-ms", 0,
		"slow-request threshold in milliseconds: any admitted request at or over it logs one JSON line with its stage breakdown (0 disables)")
	executor := flag.String("executor", serve.ExecutorIter,
		"window executor: iter (composed iterator plans) or fused (hand-fused range pipeline, the escape hatch)")
	logFormat := flag.String("log-format", "text", "operational log format: text or json")
	logLevel := flag.String("log-level", "info", "operational log level: debug, info, warn, error")
	pprofAddr := flag.String("pprof-addr", "",
		"separate listen address for net/http/pprof profiling endpoints (empty disables; bind it privately)")
	flag.Parse()

	level, ok := obs.ParseLevel(*logLevel)
	if !ok {
		fmt.Fprintf(os.Stderr, "bad -log-level %q: want debug, info, warn, or error\n", *logLevel)
		os.Exit(2)
	}
	format, ok := obs.ParseFormat(*logFormat)
	if !ok {
		fmt.Fprintf(os.Stderr, "bad -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, format)

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // Options.CacheBytes: negative disables, 0 means default
	}
	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bopts := core.DefaultOptions(partition.Spatial, *epsP)
	bopts.Epsilon1 = *eps1
	bopts.Seed = *seed
	opts := serve.Options{
		Build: bopts,
		Index: index.Options{
			EpsS: *epsP,
			GC:   geo.MetersToDegrees(*gcMeters),
			EpsC: 0.5,
			EpsD: 0.5,
			Seed: *seed,
		},
		Dir:                 *dir,
		HotTicks:            *hotTicks,
		KeepHotTicks:        *keepHot,
		CompactInterval:     *interval,
		CacheBytes:          cacheBytes,
		DefaultQueryTimeout: *queryTimeout,
		WALDir:              *walDir,
		WALSync:             policy,
		WALSyncInterval:     *fsyncEvery,
		WALSegmentBytes:     *walSegMB << 20,
		WALRetainSegments:   *walRetain,
		GroupCommitWait:     *groupWait,
		ReplicateFrom:       *replicateFrom,
		MaxReplicaLagTicks:  *maxLagTicks,
		ReplBackoff:         *replBackoff,
		Admit: admit.Options{
			MaxInFlightIngest: *maxIngest,
			MaxInFlightQuery:  *maxQuery,
			MaxQueue:          *admitQueue,
			MaxWait:           *admitWait,
			ClientRate:        *clientRate,
			ClientBurst:       *clientBurst,
		},
		Log:       logger,
		SlowQuery: time.Duration(*slowQueryMS) * time.Millisecond,
		Executor:  *executor,
	}

	repo, err := serve.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *preload > 0 && *replicateFrom != "" {
		fmt.Fprintln(os.Stderr, "-preload and -replicate-from are mutually exclusive: a follower only accepts writes from its primary's stream")
		os.Exit(2)
	}
	if *preload > 0 {
		d := gen.Porto(gen.Config{NumTrajectories: *preload, MinLen: 30, MaxLen: 200, Seed: *seed})
		n := 0
		err := d.Stream(func(col *traj.Column) error {
			n += col.Len()
			return repo.IngestColumn(col)
		})
		if err != nil {
			logger.Error("preload failed", "err", err)
			os.Exit(1)
		}
		if err := repo.Flush(); err != nil {
			logger.Error("preload flush failed", "err", err)
			os.Exit(1)
		}
		st := repo.Stats()
		logger.Info("preloaded synthetic data",
			"points", n, "segments", st.Segments, "disk_kb", st.DiskBytes/1000)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener (DefaultServeMux, where the blank
		// import registered /debug/pprof/*) so profiling endpoints never
		// share a port with the public API.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof server exited", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           repo.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	role := "primary"
	if *replicateFrom != "" {
		role = "follower of " + *replicateFrom
	}
	logger.Info("ppqserve listening", "addr", *addr, "dir", *dir, "hot", *hotTicks,
		"cache_mib", *cacheMB, "timeout", *queryTimeout, "fsync", *fsync,
		"slow_query_ms", *slowQueryMS, "role", role)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests, flush the
	// hot tail (the final compact + manifest swap), and close. A bare kill
	// used to skip all of that: the deferred Close never ran, losing
	// whatever the compactor had not yet sealed to disk.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			repo.Close()
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		logger.Info("shutdown signal received: draining, then flushing",
			"signal", sig, "drain_timeout", *drainTimeout)
		signal.Stop(sigCh) // a second signal kills immediately, the default disposition
		if err := serve.DrainAndClose(srv, repo, *drainTimeout); err != nil {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}
