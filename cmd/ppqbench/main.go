// Command ppqbench runs the paper's experiments from the command line:
// every table and figure of the evaluation section, at a selectable
// scale.
//
// Usage:
//
//	ppqbench -experiment table2            # one experiment
//	ppqbench -experiment all -scale full   # the full recorded run
//	ppqbench -experiment perf -json BENCH_PPQ.json -label my-change
//
// Experiments: table2 table3 table4 table56 table7 table8 table9
// figure7 figure8 figure9 perf serve cache wal window load all. The perf
// experiment measures the three hot paths (per-tick build, engine
// construction, STRQ) on the standard SyntheticPorto(2000, 42) workload;
// the serve experiment drives the repository server's mixed ingest/query
// workload (live ingestion + background compaction + concurrent STRQ
// traffic); the cache experiment replays a skewed repeated-STRQ probe
// set against sealed segments to measure the decoded-cell cache's
// cached-vs-cold speedup; the wal experiment prices the durability
// spectrum — ingest throughput under each write-ahead-log sync policy
// (never / interval / always) plus crash-replay speed; the window
// experiment replays 512-tick window queries through the per-tick and
// range-scan executors and records the speedup plus zone-map skip rates;
// the exec experiment replays the same 512-tick windows through the
// fused range pipeline and the composed iterator executor on one warmed
// repository, cross-checking every answer and recording the iter/fused
// ratio plus plan/operator telemetry;
// the load experiment sweeps an open-loop offered-QPS ladder against a
// fully-armed server (fsync=always, group commit, admission control)
// recording served QPS, shed rate, and latency percentiles per rung;
// the repl experiment measures WAL-shipped replication — cold-follower
// catch-up bandwidth, plus sampled staleness (lag in ticks) of a
// follower tailing a primary ingesting at full speed.
// All of these append to a machine-readable history with -json so PRs
// track the perf trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppqtraj/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (table2..table9, figure7..figure9, perf, serve, cache, wal, window, exec, load, repl, all)")
	scaleName := flag.String("scale", "small", "dataset scale: small or full")
	queries := flag.Int("queries", 0, "override query/probe/window count (0 = scale default)")
	jsonPath := flag.String("json", "", "perf/serve/cache/wal/window only: append the run to this JSON history file")
	label := flag.String("label", "dev", "perf/serve/cache/wal/window only: label recorded with the run")
	flag.Parse()

	s := bench.Small
	if *scaleName == "full" {
		s = bench.Full
	}
	if *queries > 0 {
		s.Queries = *queries
	}

	w := os.Stdout
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(w, "[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table2", func() { bench.Table2(s, w) })
	run("table3", func() { bench.Table3(s, w) })
	run("table4", func() { bench.Table4(s, w) })
	run("table56", func() { bench.Table56(s, w) })
	run("table7", func() { bench.Table7(s, w) })
	run("table8", func() { bench.Table8(s, w) })
	run("table9", func() { bench.Table9(s, w) })
	run("figure7", func() { bench.Figure7(s, w) })
	run("figure8", func() { bench.Figure8(s, w) })
	run("figure9", func() { bench.Figure9(s, w, bench.Table56(s, nil)) })
	if *exp == "perf" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendPerf(*jsonPath, *label, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.Perf(*label, w)
		}
		fmt.Fprintf(w, "[perf completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "serve" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendServe(*jsonPath, *label, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.ServeBench(*label, w)
		}
		fmt.Fprintf(w, "[serve completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "cache" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendCache(*jsonPath, *label, *queries, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.CacheBench(*label, *queries, w)
		}
		fmt.Fprintf(w, "[cache completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "wal" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendWAL(*jsonPath, *label, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.WALBench(*label, w)
		}
		fmt.Fprintf(w, "[wal completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "load" {
		start := time.Now()
		levels := bench.DefaultLoadLevels
		perLevel := 2 * time.Second
		if *scaleName == "small" {
			levels = []float64{200, 1000, 4000}
			perLevel = time.Second
		}
		if *jsonPath != "" {
			if err := bench.AppendLoad(*jsonPath, *label, levels, perLevel, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.LoadBench(*label, levels, perLevel, w)
		}
		fmt.Fprintf(w, "[load completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "window" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendWindow(*jsonPath, *label, *queries, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.WindowBench(*label, *queries, w)
		}
		fmt.Fprintf(w, "[window completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "exec" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendExec(*jsonPath, *label, *queries, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.ExecBench(*label, *queries, w)
		}
		fmt.Fprintf(w, "[exec completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "repl" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendRepl(*jsonPath, *label, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.ReplBench(*label, w)
		}
		fmt.Fprintf(w, "[repl completed in %.1fs]\n\n", time.Since(start).Seconds())
	}
	if *exp == "obs" {
		start := time.Now()
		if *jsonPath != "" {
			if err := bench.AppendObs(*jsonPath, *label, w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bench.ObsBench(*label, w)
		}
		fmt.Fprintf(w, "[obs completed in %.1fs]\n\n", time.Since(start).Seconds())
	}

	switch *exp {
	case "all", "table2", "table3", "table4", "table56", "table7", "table8",
		"table9", "figure7", "figure8", "figure9", "perf", "serve", "cache", "wal", "window", "exec", "load", "obs", "repl":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
