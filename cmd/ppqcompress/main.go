// Command ppqcompress builds a PPQ summary for a trajectory CSV file
// (traj_id,tick,x,y) and reports compression and quality statistics. With
// -demo it generates a synthetic Porto dataset instead of reading a file.
//
// Usage:
//
//	ppqcompress -in trips.csv -epsilon 111 -mode spatial
//	ppqcompress -demo 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/traj"
)

func main() {
	in := flag.String("in", "", "input CSV (traj_id,tick,x,y)")
	demo := flag.Int("demo", 0, "generate a synthetic Porto dataset of n trajectories instead of reading a file")
	epsM := flag.Float64("epsilon", 111, "codebook error bound ε₁ in meters")
	gsM := flag.Float64("gs", 50, "CQC grid cell size g_s in meters (0 disables CQC)")
	mode := flag.String("mode", "spatial", "partitioning: spatial, autocorr, none")
	epsP := flag.Float64("epsp", 0, "partition threshold ε_p (0 = default for mode)")
	noPred := flag.Bool("nopredict", false, "disable prediction (Q-trajectory baseline)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var d *traj.Dataset
	switch {
	case *demo > 0:
		d = gen.Porto(gen.Config{NumTrajectories: *demo, MinLen: 30, MaxLen: 200, Seed: *seed})
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		d, err = traj.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -demo N")
		flag.Usage()
		os.Exit(2)
	}

	opts := core.Options{
		K:        3,
		Epsilon1: geo.MetersToDegrees(*epsM),
		Seed:     *seed,
	}
	switch *mode {
	case "spatial":
		opts.Mode = partition.Spatial
		opts.EpsilonP = 0.1
	case "autocorr":
		opts.Mode = partition.Autocorr
		opts.EpsilonP = 0.2
	case "none":
		opts.Mode = partition.None
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *epsP > 0 {
		opts.EpsilonP = *epsP
	}
	if *gsM > 0 {
		opts.UseCQC = true
		opts.GS = geo.MetersToDegrees(*gsM)
	}
	opts.NoPrediction = *noPred

	fmt.Printf("input: %d trajectories, %d points, %.2f MB raw\n",
		d.Len(), d.NumPoints(), float64(d.RawBytes())/1e6)
	s := core.Build(d, opts)
	fmt.Printf("build: %.2f s (partitioning %.2f s)\n",
		s.BuildTime.Seconds(), s.PartitionTime.Seconds())
	fmt.Printf("codebook: %d codewords\n", s.NumCodewords())
	fmt.Printf("summary: %.2f KB → compression ratio %.2fx\n",
		float64(s.SizeBytes())/1e3, s.CompressionRatio(d.RawBytes()))
	fmt.Printf("quality: MAE %.1f m, worst case %.1f m\n",
		s.MAEMeters(), geo.DegreesToMeters(s.MaxDeviation()))
}
