// Command ppqquery builds a summary plus index over a trajectory CSV (or
// a synthetic demo dataset) and answers spatio-temporal queries supplied
// on the command line.
//
// Usage:
//
//	ppqquery -demo 300 -x -8.61 -y 41.15 -t 40 -l 10
//	ppqquery -in trips.csv -x 116.35 -y 39.95 -t 100 -exact
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

func main() {
	in := flag.String("in", "", "input CSV (traj_id,tick,x,y)")
	demo := flag.Int("demo", 0, "use a synthetic Porto dataset of n trajectories")
	x := flag.Float64("x", 0, "query longitude")
	y := flag.Float64("y", 0, "query latitude")
	t := flag.Int("t", 0, "query tick")
	l := flag.Int("l", 0, "path-query length (0 = range query only)")
	exact := flag.Bool("exact", false, "verify candidates against raw data (precision 1)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var d *traj.Dataset
	switch {
	case *demo > 0:
		d = gen.Porto(gen.Config{NumTrajectories: *demo, MinLen: 30, MaxLen: 200, Seed: *seed})
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		d, err = traj.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -demo N")
		flag.Usage()
		os.Exit(2)
	}

	opts := core.DefaultOptions(partition.Spatial, 0.1)
	opts.Seed = *seed
	sum := core.Build(d, opts)
	eng, err := query.BuildEngine(sum, index.Options{
		EpsS: 0.1,
		GC:   geo.MetersToDegrees(100),
		EpsC: 0.5,
		EpsD: 0.5,
		Seed: *seed,
	}, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d trajectories (%d points), summary %.1f KB, MAE %.1f m\n",
		d.Len(), d.NumPoints(), float64(sum.SizeBytes())/1e3, sum.MAEMeters())

	p := geo.Pt(*x, *y)
	res, err := eng.STRQ(context.Background(), p, *t, *exact, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Covered {
		fmt.Printf("query %v @ t=%d: outside indexed space\n", p, *t)
		return
	}
	fmt.Printf("query %v @ t=%d (cell %v):\n", p, *t, res.Cell)
	fmt.Printf("  %d matches (candidates %d", len(res.IDs), res.Candidates)
	if *exact {
		fmt.Printf(", raw verifications %d", res.Visited)
	}
	fmt.Println(")")
	for _, id := range res.IDs {
		fmt.Printf("  trajectory %d", id)
		if *l > 0 {
			path := sum.ReconstructPath(id, *t, *l)
			if len(path) > 0 {
				fmt.Printf(" → next %d: %v … %v", len(path), path[0], path[len(path)-1])
			}
		}
		fmt.Println()
	}
}
