package ppqtraj

import (
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	data := SyntheticPorto(25, 42)
	sum := BuildSummary(data, DefaultConfig())
	if sum.NumPoints() != data.NumPoints() {
		t.Fatalf("NumPoints = %d, want %d", sum.NumPoints(), data.NumPoints())
	}
	if sum.MAEMeters() <= 0 || sum.MAEMeters() > sum.MaxDeviationMeters() {
		t.Fatalf("MAE %v m outside (0, %v]", sum.MAEMeters(), sum.MaxDeviationMeters())
	}
	if sum.CompressionRatio(data.RawBytes()) <= 1 {
		t.Fatal("summary should compress")
	}
	eng, err := NewEngine(sum, DefaultIndexConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	tr := data.Get(0)
	qp, _ := tr.At(tr.Start + 3)
	res := eng.RangeQuery(qp, tr.Start+3)
	if !res.Covered {
		t.Fatal("query over an indexed point should be covered")
	}
	found := false
	for _, id := range res.IDs {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("recall-1 guarantee: the querying trajectory itself must match")
	}
	exact, err := eng.ExactRangeQuery(qp, tr.Start+3)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Visited == 0 {
		t.Fatal("exact query should visit candidates")
	}
	paths := eng.PathQuery(qp, tr.Start+3, 10)
	if len(paths.Paths) == 0 {
		t.Fatal("path query should return paths")
	}
}

func TestStreamBuilderOnline(t *testing.T) {
	sb := NewStreamBuilder(DefaultConfig())
	for tick := 0; tick < 20; tick++ {
		ids := []ID{0, 1}
		pos := []Point{
			Pt(-8.6+float64(tick)*0.0001, 41.15),
			Pt(-8.61, 41.16+float64(tick)*0.0001),
		}
		if err := sb.Append(tick, ids, pos); err != nil {
			t.Fatal(err)
		}
	}
	sum := sb.Summary()
	if sum.NumPoints() != 40 {
		t.Fatalf("NumPoints = %d", sum.NumPoints())
	}
	if _, ok := sum.Reconstruct(0, 10); !ok {
		t.Fatal("reconstruction missing")
	}
	if got := sum.ReconstructPath(1, 5, 5); len(got) != 5 {
		t.Fatalf("path length = %d", len(got))
	}
}

func TestStreamBuilderLengthMismatch(t *testing.T) {
	sb := NewStreamBuilder(DefaultConfig())
	if err := sb.Append(0, []ID{1}, nil); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestConfigDefaultsFilledIn(t *testing.T) {
	// A zero Config must behave like DefaultConfig.
	data := SyntheticPorto(10, 7)
	zero := BuildSummary(data, Config{})
	def := BuildSummary(data, DefaultConfig())
	if zero.NumCodewords() != def.NumCodewords() {
		t.Fatalf("zero config diverged: %d vs %d codewords",
			zero.NumCodewords(), def.NumCodewords())
	}
	if zero.MAEMeters() != def.MAEMeters() {
		t.Fatal("zero config MAE diverged")
	}
}

func TestAutocorrModePublic(t *testing.T) {
	data := SyntheticPorto(15, 8)
	cfg := DefaultConfig()
	cfg.Mode = Autocorr
	cfg.PartitionThreshold = 0.01
	sum := BuildSummary(data, cfg)
	if sum.MAEMeters() <= 0 || sum.MAEMeters() > sum.MaxDeviationMeters() {
		t.Fatalf("autocorr MAE %v implausible", sum.MAEMeters())
	}
}

func TestDisableCQCPublic(t *testing.T) {
	data := SyntheticPorto(15, 9)
	cfg := DefaultConfig()
	cfg.DisableCQC = true
	sum := BuildSummary(data, cfg)
	// Without CQC the bound is ε₁ = 111 m.
	if sum.MaxDeviationMeters() < 100 {
		t.Fatalf("non-CQC deviation bound should be ε₁: %v", sum.MaxDeviationMeters())
	}
}

func TestUnitConversions(t *testing.T) {
	if DegreesToMeters(MetersToDegrees(500)) != 500 {
		t.Fatal("conversion round trip failed")
	}
}

func TestSyntheticGeoLifePublic(t *testing.T) {
	d := SyntheticGeoLife(3, 3)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.NumPoints() < 900 {
		t.Fatal("GeoLife trajectories should be long")
	}
}
