// Speed benchmarks for the three measured hot paths: per-tick summary
// construction (Builder.Append), engine construction over a finished
// summary (query.BuildEngine), and STRQ evaluation. All run on the
// SyntheticPorto(2000, 42) workload; BENCH_PPQ.json records the numbers
// across PRs (see cmd/ppqbench -experiment perf).
package ppqtraj

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"ppqtraj/internal/core"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/query"
	"ppqtraj/internal/traj"
)

var speedData struct {
	once sync.Once
	d    *traj.Dataset
	cols []*traj.Column
}

// speedDataset materializes SyntheticPorto(2000, 42) and its column stream
// once; column materialization is excluded from every benchmark loop.
func speedDataset() (*traj.Dataset, []*traj.Column) {
	speedData.once.Do(func() {
		speedData.d = SyntheticPorto(2000, 42)
		_ = speedData.d.Stream(func(col *traj.Column) error {
			speedData.cols = append(speedData.cols, &traj.Column{
				Tick:   col.Tick,
				IDs:    append([]traj.ID(nil), col.IDs...),
				Points: append([]geo.Point(nil), col.Points...),
			})
			return nil
		})
	})
	return speedData.d, speedData.cols
}

func speedOpts(mode partition.Mode) core.Options {
	epsP := 0.1
	if mode == partition.Autocorr {
		epsP = 0.2
	}
	o := core.DefaultOptions(mode, epsP)
	o.Seed = 7
	return o
}

func benchBuild(b *testing.B, mode partition.Mode) *core.Summary {
	b.Helper()
	d, cols := speedDataset()
	b.ReportAllocs()
	b.ResetTimer()
	var sum *core.Summary
	for i := 0; i < b.N; i++ {
		bl := core.NewBuilder(speedOpts(mode))
		for _, col := range cols {
			bl.Append(col)
		}
		sum = bl.Summary()
	}
	b.StopTimer()
	b.ReportMetric(float64(d.NumPoints())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	return sum
}

// BenchmarkBuilderAppend measures full-stream ingest (per-tick Append over
// every column of the workload) for both partitioning modes.
func BenchmarkBuilderAppend(b *testing.B) {
	b.Run("Spatial", func(b *testing.B) { benchBuild(b, partition.Spatial) })
	b.Run("Autocorr", func(b *testing.B) { benchBuild(b, partition.Autocorr) })
}

func speedIndexOpts() index.Options {
	return index.Options{
		EpsS: 0.1,
		GC:   geo.MetersToDegrees(100),
		EpsC: 0.5,
		EpsD: 0.5,
		Seed: 11,
	}
}

// BenchmarkBuildEngine measures TPI construction over a finished PPQ-S
// summary — the O(points) path of query.BuildEngine.
func BenchmarkBuildEngine(b *testing.B) {
	d, _ := speedDataset()
	sum := core.Build(d, speedOpts(partition.Spatial))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.BuildEngine(sum, speedIndexOpts(), d); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sum.NumPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// TestAppendAllocationLean asserts the Builder's steady-state allocation
// budget: scratch buffers and arenas keep per-point allocations far below
// one — what remains is dominated by the summary's own retained storage
// (entries, reconstructions, codebook). A regression that reintroduces
// per-tick buffer churn trips this immediately.
func TestAppendAllocationLean(t *testing.T) {
	d, cols := speedDataset()
	bl := core.NewBuilder(speedOpts(partition.Spatial))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, col := range cols {
		bl.Append(col)
	}
	runtime.ReadMemStats(&after)
	perPoint := float64(after.Mallocs-before.Mallocs) / float64(d.NumPoints())
	// Current steady state is ≈0.45 allocations/point; the bound leaves
	// headroom for runtime variation while still catching churn (the
	// pre-scratch pipeline sat above 2 allocations/point).
	if perPoint > 1.5 {
		t.Fatalf("Append allocates %.2f objects/point; want ≤ 1.5", perPoint)
	}
}

// BenchmarkSTRQ measures approximate range-query latency over the summary
// engine, cycling through probes sampled from the data.
func BenchmarkSTRQ(b *testing.B) {
	d, cols := speedDataset()
	sum := core.Build(d, speedOpts(partition.Spatial))
	eng, err := query.BuildEngine(sum, speedIndexOpts(), d)
	if err != nil {
		b.Fatal(err)
	}
	// Probes: one point per column, striding through the stream.
	var pts []geo.Point
	var ticks []int
	for _, col := range cols {
		pts = append(pts, col.Points[len(col.Points)/2])
		ticks = append(ticks, col.Tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pts)
		eng.STRQ(context.Background(), pts[j], ticks[j], false, nil) //nolint:errcheck // approximate mode never errors
	}
}
