module ppqtraj

go 1.24
