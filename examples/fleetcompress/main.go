// Command fleetcompress sweeps the accuracy/size trade-off for archiving
// a delivery fleet's GPS history: how much storage does each spatial
// deviation budget cost, and what do the PPQ design choices (partitioning
// mode, CQC) buy? This mirrors the compression study of the paper's §6.4.
package main

import (
	"fmt"

	"ppqtraj"
)

func build(data *ppqtraj.Dataset, cfg ppqtraj.Config, label string) {
	sum := ppqtraj.BuildSummary(data, cfg)
	fmt.Printf("  %-22s MAE %7.1f m   worst %7.1f m   %8.1f KB   ratio %5.1fx   |C|=%d\n",
		label, sum.MAEMeters(), sum.MaxDeviationMeters(),
		float64(sum.SizeBytes())/1e3, sum.CompressionRatio(data.RawBytes()),
		sum.NumCodewords())
}

func main() {
	data := ppqtraj.SyntheticPorto(400, 99)
	fmt.Printf("fleet history: %d vehicles, %d fixes, %.1f MB raw\n\n",
		data.Len(), data.NumPoints(), float64(data.RawBytes())/1e6)

	fmt.Println("deviation budget sweep (spatial partitioning, CQC on):")
	for _, devM := range []float64{200, 400, 600, 800, 1000} {
		cfg := ppqtraj.DefaultConfig()
		// Paper protocol (§6.3.1): ε₁^M = 2·g_s so the CQC-refined
		// deviation equals the budget.
		cfg.EpsilonMeters = devM
		cfg.CQCCellMeters = devM / 2
		build(data, cfg, fmt.Sprintf("budget %4.0f m", devM))
	}

	fmt.Println("\ndesign ablations at the default ε₁ ≈ 111 m:")
	cfg := ppqtraj.DefaultConfig()
	build(data, cfg, "PPQ-S (spatial + CQC)")

	cfg = ppqtraj.DefaultConfig()
	cfg.Mode = ppqtraj.Autocorr
	build(data, cfg, "PPQ-A (autocorr + CQC)")

	cfg = ppqtraj.DefaultConfig()
	cfg.DisableCQC = true
	build(data, cfg, "PPQ-S-basic (no CQC)")

	cfg = ppqtraj.DefaultConfig()
	cfg.Mode = ppqtraj.NoPartition
	build(data, cfg, "E-PQ (no partitioning)")
}
