// Command predictive uses trajectory path queries for short-horizon
// position prediction: given vehicles observed at a location now, report
// where the summary says they will be l steps later, and score those
// forecasts against what actually happened — the "predicting future
// positions of entities" use case from the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppqtraj"
)

func main() {
	data := ppqtraj.SyntheticPorto(250, 11)
	sum := ppqtraj.BuildSummary(data, ppqtraj.DefaultConfig())
	eng, err := ppqtraj.NewEngine(sum, ppqtraj.DefaultIndexConfig(), data)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	horizons := []int{4, 10, 20} // 1, 2.5, 5 minutes at 15 s sampling
	errSum := map[int]float64{}
	errN := map[int]int{}

	probes := 0
	for probes < 200 {
		tr := data.Get(ppqtraj.ID(rng.Intn(data.Len())))
		if tr.Len() < 30 {
			continue
		}
		tick := tr.Start + rng.Intn(tr.Len()-25)
		qp, _ := tr.At(tick)
		res := eng.PathQuery(qp, tick, 21)
		if !res.Range.Covered || len(res.Paths) == 0 {
			continue
		}
		probes++
		for id, path := range res.Paths {
			actual := data.Get(id)
			for _, h := range horizons {
				if h < len(path) {
					if truth, ok := actual.At(tick + h); ok {
						errSum[h] += ppqtraj.DegreesToMeters(path[h].Dist(truth))
						errN[h]++
					}
				}
			}
		}
	}

	fmt.Printf("scored %d probe queries\n\n", probes)
	fmt.Println("forecast horizon   mean position error")
	for _, h := range horizons {
		if errN[h] == 0 {
			continue
		}
		fmt.Printf("  %2d steps (%3.0f s)   %7.1f m over %d forecasts\n",
			h, float64(h)*15, errSum[h]/float64(errN[h]), errN[h])
	}
	fmt.Println("\n(the error equals the summary's reconstruction deviation —")
	fmt.Println(" the path query reads stored future ticks, it does not extrapolate)")
}
