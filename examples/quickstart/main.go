// Command quickstart is the smallest end-to-end use of ppqtraj: generate
// a taxi-like dataset, build the PPQ summary, index it, and run one
// spatio-temporal range query and one path query.
package main

import (
	"fmt"
	"log"

	"ppqtraj"
)

func main() {
	// 1. Data: 200 synthetic Porto taxi trajectories (swap in your own
	//    with ppqtraj.NewDataset).
	data := ppqtraj.SyntheticPorto(200, 42)
	fmt.Printf("dataset: %d trajectories, %d points, %.1f MB raw\n",
		data.Len(), data.NumPoints(), float64(data.RawBytes())/1e6)

	// 2. Summary: error-bounded predictive quantization with CQC.
	sum := ppqtraj.BuildSummary(data, ppqtraj.DefaultConfig())
	fmt.Printf("summary: %d codewords, %.1f KB, compression ratio %.1fx\n",
		sum.NumCodewords(), float64(sum.SizeBytes())/1e3,
		sum.CompressionRatio(data.RawBytes()))
	fmt.Printf("quality: MAE %.1f m (worst case %.1f m)\n",
		sum.MAEMeters(), sum.MaxDeviationMeters())

	// 3. Index and query.
	eng, err := ppqtraj.NewEngine(sum, ppqtraj.DefaultIndexConfig(), data)
	if err != nil {
		log.Fatal(err)
	}

	// Who was near this point at tick 20?
	tr := data.Get(0)
	probe, _ := tr.At(tr.Start + 20)
	res := eng.RangeQuery(probe, tr.Start+20)
	fmt.Printf("\nSTRQ at %v, tick %d → %d trajectories: %v\n",
		probe, tr.Start+20, len(res.IDs), res.IDs)

	// Where do they go over the next 10 ticks (2.5 min at 15 s sampling)?
	paths := eng.PathQuery(probe, tr.Start+20, 10)
	for id, path := range paths.Paths {
		if len(path) > 0 {
			fmt.Printf("TPQ: trajectory %d heads to %v after %d steps\n",
				id, path[len(path)-1], len(path))
		}
	}

	// Exact mode: verify candidates against raw data → precision 1.
	exact, err := eng.ExactRangeQuery(probe, tr.Start+20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact STRQ → %d verified matches (visited %d of %d trajectories)\n",
		len(exact.IDs), exact.Visited, data.Len())
}
