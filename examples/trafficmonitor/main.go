// Command trafficmonitor demonstrates the online scenario that motivates
// the paper (§1): a stream of vehicle positions is quantized as it
// arrives, and the operator periodically asks "which vehicles are passing
// through this junction right now?" — answered from the compact summary,
// never from the raw stream.
package main

import (
	"fmt"
	"log"

	"ppqtraj"
)

// junction is a monitored location in the synthetic city.
type junction struct {
	name string
	pos  ppqtraj.Point
}

func main() {
	data := ppqtraj.SyntheticPorto(300, 7)

	// The stream builder ingests positions tick by tick, exactly as a
	// message queue would deliver them.
	sb := ppqtraj.NewStreamBuilder(ppqtraj.DefaultConfig())
	maxTick := data.MaxTick()
	for tick := 0; tick < maxTick; tick++ {
		var ids []ppqtraj.ID
		var pos []ppqtraj.Point
		for _, tr := range data.All() {
			if p, ok := tr.At(tick); ok {
				ids = append(ids, tr.ID)
				pos = append(pos, p)
			}
		}
		if len(ids) == 0 {
			continue
		}
		if err := sb.Append(tick, ids, pos); err != nil {
			log.Fatal(err)
		}
	}
	sum := sb.Summary()
	fmt.Printf("ingested %d points → %.1f KB summary (%.1fx compression), MAE %.1f m\n",
		sum.NumPoints(), float64(sum.SizeBytes())/1e3,
		sum.CompressionRatio(data.RawBytes()), sum.MAEMeters())

	eng, err := ppqtraj.NewEngine(sum, ppqtraj.DefaultIndexConfig(), data)
	if err != nil {
		log.Fatal(err)
	}

	// Monitor three junctions, each picked where a vehicle actually passes
	// mid-trip so the demo has hits, and query a window of ticks around
	// that moment.
	type probe struct {
		junction
		tick int
	}
	probes := []probe{}
	for i, id := range []ppqtraj.ID{3, 57, 120} {
		tr := data.Get(id)
		mid := tr.Start + tr.Len()/2
		p, _ := tr.At(mid)
		probes = append(probes, probe{junction{fmt.Sprintf("J%d", i+1), p}, mid})
	}

	for _, pr := range probes {
		fmt.Printf("\n== junction %s at %v ==\n", pr.name, pr.pos)
		for _, dt := range []int{-8, 0, 8} {
			tick := pr.tick + dt
			res := eng.RangeQuery(pr.pos, tick)
			if !res.Covered {
				fmt.Printf("  t=%3d: outside indexed space\n", tick)
				continue
			}
			fmt.Printf("  t=%3d: %d vehicles in cell", tick, len(res.IDs))
			if len(res.IDs) > 0 {
				// Follow the first vehicle for the next minute.
				paths := eng.PathQuery(pr.pos, tick, 4)
				for id, path := range paths.Paths {
					if len(path) > 0 {
						fmt.Printf(" — vehicle %d → %v", id, path[len(path)-1])
						break
					}
				}
			}
			fmt.Println()
		}
	}
}
