// Example: the sharded repository server end to end over HTTP — live
// ingestion into the hot tail, background compaction into sealed
// quantized segments, then batch STRQ and window queries against the
// running server.
//
//	go run ./examples/repository
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ppqtraj/internal/core"
	"ppqtraj/internal/gen"
	"ppqtraj/internal/geo"
	"ppqtraj/internal/index"
	"ppqtraj/internal/partition"
	"ppqtraj/internal/serve"
	"ppqtraj/internal/traj"
)

func main() {
	// A repository tuned for a demo: small hot tail, eager compactor.
	repo, err := serve.Open(serve.Options{
		Build: core.DefaultOptions(partition.Spatial, 0.1),
		Index: index.Options{
			EpsS: 0.1,
			GC:   geo.MetersToDegrees(100),
			EpsC: 0.5, EpsD: 0.5, Seed: 1,
		},
		HotTicks:        16,
		CompactInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, repo.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("repository server on %s\n\n", base)

	// Stream a synthetic taxi fleet into /v1/ingest, one tick per request
	// — exactly what a live feed would do.
	d := gen.Porto(gen.Config{NumTrajectories: 200, MinLen: 40, MaxLen: 80, Seed: 3})
	var lastCol *traj.Column
	err = d.Stream(func(col *traj.Column) error {
		points := make([]serve.IngestPoint, col.Len())
		for i, id := range col.IDs {
			points[i] = serve.IngestPoint{ID: id, X: col.Points[i].X, Y: col.Points[i].Y}
		}
		lastCol = col
		return post(base+"/v1/ingest", serve.IngestRequest{
			Ticks: []serve.IngestTick{{Tick: col.Tick, Points: points}},
		}, nil)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Batch query: who is near these probes right now (hot tail) and
	// thirty ticks ago (already compacted into sealed segments)?
	probe := lastCol.Points[0]
	var qr serve.QueryResponse
	if err := post(base+"/v1/query", serve.QueryRequest{Queries: []serve.STRQRequest{
		{P: probe, Tick: lastCol.Tick, PathLen: 5},
		{P: probe, Tick: lastCol.Tick - 30},
	}}, &qr); err != nil {
		log.Fatal(err)
	}
	for _, ans := range qr.Answers {
		fmt.Printf("STRQ tick %-4d → %2d matches from %-10s cell %v\n",
			ans.Tick, len(ans.IDs), ans.Source, ans.Cell)
	}

	// Window query: everyone who crossed the probe's neighborhood in the
	// last 20 ticks — fans out over segments + hot tail concurrently.
	var wr serve.WindowResult
	rect := geo.Rect{
		MinX: probe.X - 0.005, MinY: probe.Y - 0.005,
		MaxX: probe.X + 0.005, MaxY: probe.Y + 0.005,
	}
	if err := post(base+"/v1/window", serve.WindowRequest{
		Rect: rect, From: lastCol.Tick - 20, To: lastCol.Tick,
	}, &wr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window [%d, %d] → %d trajectories over %d shards\n\n",
		wr.From, wr.To, len(wr.IDs), wr.Sources)

	var st serve.Stats
	if err := post(base+"/v1/flush", struct{}{}, &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after flush: %d points in %d sealed segments, %d compactions, %d queries served\n",
		st.SegmentPoints, st.Segments, st.Compactions, st.Queries)
}

func post(url string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
